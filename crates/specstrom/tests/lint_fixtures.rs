//! Fixtures pinning every diagnostic code of the spec static analysis:
//! one minimal source per code, asserting the exact code list and the
//! exact `line:col` the diagnostic anchors to. These are the stability
//! contract behind `evalharness lint` — a change that moves a span or
//! renames a code shows up here, not in CI logs downstream.

use specstrom::{compile, line_col, lint, parse_spec, Diagnostic, DiagnosticCode};

/// Lints `src` and projects each diagnostic to `(code, line, col)`.
fn lint_at(src: &str) -> Vec<(DiagnosticCode, usize, usize)> {
    let spec = parse_spec(src).expect("fixture parses");
    let compiled = compile(&spec).expect("fixture compiles");
    lint(&spec, &compiled)
        .iter()
        .map(|d: &Diagnostic| {
            let (line, col) = line_col(src, d.span.start);
            (d.code, line, col)
        })
        .collect()
}

#[test]
fn tautological_property_fixture() {
    let src = "let ~p = always (true || `#x`.visible);\ncheck p with noop!;";
    assert_eq!(
        lint_at(src),
        vec![(DiagnosticCode::TautologicalProperty, 1, 10)]
    );
}

#[test]
fn unsatisfiable_property_fixture() {
    let src = "let ~p = always (false && `#x`.visible);\ncheck p with noop!;";
    assert_eq!(
        lint_at(src),
        vec![(DiagnosticCode::UnsatisfiableProperty, 1, 10)]
    );
}

#[test]
fn vacuous_implication_fixture() {
    // The conjunct keeps the skeleton non-constant, so only the vacuity
    // of the implication is reported — anchored at its antecedent.
    let src = "let ~p = always (((false && `#x`.visible) ==> `#y`.visible) && `#z`.present);\n\
               check p with noop!;";
    assert_eq!(
        lint_at(src),
        vec![(DiagnosticCode::VacuousImplication, 1, 20)]
    );
}

#[test]
fn unreachable_branch_eventually_fixture() {
    let src = "let ~p = `#x`.present || eventually (false && `#y`.visible);\ncheck p with noop!;";
    assert_eq!(
        lint_at(src),
        vec![(DiagnosticCode::UnreachableBranch, 1, 38)]
    );
}

#[test]
fn unreachable_branch_until_fixture() {
    // An `until` whose release side is statically false also collapses
    // the whole property, so both diagnostics fire — the property-level
    // one first (spans sort by position).
    let src = "let ~p = always (`#x`.present until (false && `#y`.visible));\ncheck p with noop!;";
    assert_eq!(
        lint_at(src),
        vec![
            (DiagnosticCode::UnsatisfiableProperty, 1, 10),
            (DiagnosticCode::UnreachableBranch, 1, 38),
        ]
    );
}

#[test]
fn unused_binding_fixture() {
    let src = "let ~dead = `#gone`.text;\nlet ~p = `#x`.present;\ncheck p with noop!;";
    assert_eq!(lint_at(src), vec![(DiagnosticCode::UnusedBinding, 1, 1)]);
}

#[test]
fn unused_action_fixture() {
    let src = "action a! = click!(`#a`);\naction b! = click!(`#b`);\n\
               let ~p = `#x`.present;\ncheck p with a!;";
    assert_eq!(lint_at(src), vec![(DiagnosticCode::UnusedAction, 2, 1)]);
}

#[test]
fn unused_selector_code_is_pinned() {
    // `unused-selector` guards against the dependency instrumentation
    // (AST reachability) covering a selector the mask analysis missed.
    // The footprint walker over-approximates from the same reachability,
    // so no surface-syntax fixture can trigger it today — the code and
    // its ordering position are pinned here so the JSON schema stays
    // stable if an analysis refinement ever opens the gap.
    assert_eq!(DiagnosticCode::UnusedSelector.as_str(), "unused-selector");
    assert_eq!(
        format!("{}", DiagnosticCode::UnusedSelector),
        "unused-selector"
    );
}

#[test]
fn diagnostic_codes_render_kebab_case() {
    let all = [
        (
            DiagnosticCode::TautologicalProperty,
            "tautological-property",
        ),
        (
            DiagnosticCode::UnsatisfiableProperty,
            "unsatisfiable-property",
        ),
        (DiagnosticCode::VacuousImplication, "vacuous-implication"),
        (DiagnosticCode::UnreachableBranch, "unreachable-branch"),
        (DiagnosticCode::UnusedBinding, "unused-binding"),
        (DiagnosticCode::UnusedAction, "unused-action"),
        (DiagnosticCode::UnusedSelector, "unused-selector"),
    ];
    for (code, rendered) in all {
        assert_eq!(code.as_str(), rendered);
    }
}

#[test]
fn bundled_specs_lint_clean() {
    // The CI lint smoke (`evalharness lint --deny-warnings`) requires the
    // bundled specifications to stay diagnostic-free; pin it here too so
    // a regression fails fast in the unit suite.
    for path in [
        "../../specs/todomvc.strom",
        "../../specs/egg_timer.strom",
        "../../specs/counter.strom",
        "../../specs/menu.strom",
        "../../specs/bigtable.strom",
        "../../specs/wizard.strom",
    ] {
        let src =
            std::fs::read_to_string(std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path))
                .expect("bundled spec readable");
        assert_eq!(lint_at(&src), vec![], "{path} has diagnostics");
    }
}
