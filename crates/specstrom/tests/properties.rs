//! Property-based tests for the Specstrom interpreter: algebraic laws of
//! the value operations, logical-lifting coherence, and evaluation-control
//! semantics.

use proptest::prelude::*;
use quickstrom_protocol::{ElementState, Selector, StateSnapshot};
use specstrom::{eval, initial_env, parse_expr, EvalCtx, Value};

fn snapshot(texts: &[String]) -> StateSnapshot {
    let mut s = StateSnapshot::new();
    s.queries.insert(
        Selector::new("li"),
        texts.iter().map(ElementState::with_text).collect(),
    );
    s.happened.push("loaded?".into());
    s
}

fn eval_src(src: &str, snap: &StateSnapshot) -> Result<Value, specstrom::EvalError> {
    let expr = parse_expr(src).map_err(|e| specstrom::EvalError::new(e.to_string()))?;
    let ctx = EvalCtx::with_state(snap, 5);
    eval::eval(&expr, &initial_env(), &ctx)
}

fn eval_int(src: &str) -> Option<i64> {
    match eval_src(src, &snapshot(&[])) {
        Ok(Value::Int(n)) => Some(n),
        _ => None,
    }
}

fn eval_bool(src: &str, snap: &StateSnapshot) -> Option<bool> {
    match eval_src(src, snap) {
        Ok(Value::Bool(b)) => Some(b),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Integer arithmetic follows the expected ring laws (within range).
    #[test]
    fn arithmetic_laws(a in -10_000i64..10_000, b in -10_000i64..10_000, c in -100i64..100) {
        prop_assert_eq!(eval_int(&format!("{a} + {b}")), Some(a + b));
        prop_assert_eq!(eval_int(&format!("{a} * ({b} + {c})")), Some(a * (b + c)));
        prop_assert_eq!(
            eval_int(&format!("{a} + {b}")),
            eval_int(&format!("{b} + {a}"))
        );
        if c != 0 {
            prop_assert_eq!(eval_int(&format!("{a} % {c}")), Some(a % c));
        }
    }

    /// Comparison is a total order consistent with Rust's.
    #[test]
    fn comparison_is_consistent(a in -1000i64..1000, b in -1000i64..1000) {
        let snap = snapshot(&[]);
        prop_assert_eq!(eval_bool(&format!("{a} < {b}"), &snap), Some(a < b));
        prop_assert_eq!(eval_bool(&format!("{a} <= {b}"), &snap), Some(a <= b));
        prop_assert_eq!(eval_bool(&format!("{a} == {b}"), &snap), Some(a == b));
        // Exactly one of <, ==, > holds.
        let lt = a < b;
        let eq = a == b;
        let gt = a > b;
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
    }

    /// Boolean operators over plain booleans are the boolean algebra.
    #[test]
    fn boolean_algebra(a in any::<bool>(), b in any::<bool>()) {
        let snap = snapshot(&[]);
        prop_assert_eq!(eval_bool(&format!("{a} && {b}"), &snap), Some(a && b));
        prop_assert_eq!(eval_bool(&format!("{a} || {b}"), &snap), Some(a || b));
        prop_assert_eq!(eval_bool(&format!("!{a}"), &snap), Some(!a));
        prop_assert_eq!(eval_bool(&format!("{a} ==> {b}"), &snap), Some(!a || b));
        // De Morgan.
        prop_assert_eq!(
            eval_bool(&format!("!({a} && {b})"), &snap),
            eval_bool(&format!("!{a} || !{b}"), &snap)
        );
    }

    /// String builtins agree with Rust's string operations.
    #[test]
    fn string_builtins(s in "[a-z ]{0,12}", t in "[a-z]{0,4}") {
        let snap = snapshot(&[]);
        prop_assert_eq!(
            eval_bool(&format!("contains({s:?}, {t:?})"), &snap),
            Some(s.contains(&t))
        );
        prop_assert_eq!(
            eval_bool(&format!("startsWith({s:?}, {t:?})"), &snap),
            Some(s.starts_with(&t))
        );
        prop_assert_eq!(
            eval_bool(&format!("trim({s:?}) == {:?}", s.trim()), &snap),
            Some(true)
        );
        match eval_src(&format!("length({s:?})"), &snap) {
            Ok(Value::Int(n)) => prop_assert_eq!(n as usize, s.chars().count()),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// `texts` and `.count` agree with the snapshot contents.
    #[test]
    fn state_projections_agree(texts in prop::collection::vec("[a-z]{1,6}", 0..6)) {
        let snap = snapshot(&texts);
        match eval_src("`li`.count", &snap) {
            Ok(Value::Int(n)) => prop_assert_eq!(n as usize, texts.len()),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        prop_assert_eq!(
            eval_bool("`li`.present", &snap),
            Some(!texts.is_empty())
        );
        match eval_src("texts(`li`)", &snap) {
            Ok(Value::List(items)) => {
                prop_assert_eq!(items.len(), texts.len());
                for (v, t) in items.iter().zip(&texts) {
                    prop_assert!(v.loosely_equals(&Value::str(t)));
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        // Indexing agrees with .all.
        if !texts.is_empty() {
            prop_assert_eq!(
                eval_bool(&format!("`li`[0].text == {:?}", texts[0]), &snap),
                Some(true)
            );
        }
        prop_assert_eq!(
            eval_bool(&format!("`li`[{}] == null", texts.len()), &snap),
            Some(true)
        );
    }

    /// List equality is structural; append/length interact correctly.
    #[test]
    fn list_laws(xs in prop::collection::vec(-50i64..50, 0..6), x in -50i64..50) {
        let snap = snapshot(&[]);
        let list = format!(
            "[{}]",
            xs.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(eval_bool(&format!("{list} == {list}"), &snap), Some(true));
        prop_assert_eq!(
            eval_bool(&format!("length(append({list}, {x})) == length({list}) + 1"), &snap),
            Some(true)
        );
        prop_assert_eq!(
            eval_bool(&format!("contains(append({list}, {x}), {x})"), &snap),
            Some(true)
        );
        prop_assert_eq!(
            eval_bool(&format!("{x} in append({list}, {x})"), &snap),
            Some(true)
        );
    }

    /// map/filter/all/any satisfy their defining equations against a
    /// Specstrom-defined predicate.
    #[test]
    fn higher_order_laws(xs in prop::collection::vec(-50i64..50, 0..8)) {
        let list = format!(
            "[{}]",
            xs.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        );
        let src = format!(
            "fun pos(x) = x > 0;\n\
             let allPos = all(pos, {list});\n\
             let anyPos = any(pos, {list});\n\
             let count = length(filter(pos, {list}));\n\
             let ~p = allPos == {} && anyPos == {} && count == {};\n\
             check p with noop!;",
            xs.iter().all(|x| *x > 0),
            xs.iter().any(|x| *x > 0),
            xs.iter().filter(|x| **x > 0).count(),
        );
        let compiled = specstrom::load(&src).unwrap_or_else(|e| panic!("{e}"));
        let thunk = compiled.property_thunk("p").unwrap();
        let snap = snapshot(&[]);
        let ctx = EvalCtx::with_state(&snap, 0);
        let formula = specstrom::expand_thunk(&thunk, &ctx).unwrap();
        prop_assert_eq!(formula, quickstrom_protocol_formula_top());
    }
}

/// `Formula::Top` with the thunk atom type, for comparison.
fn quickstrom_protocol_formula_top() -> quickltl::Formula<specstrom::Thunk> {
    quickltl::Formula::Top
}

/// Deferred vs eager evaluation: the §3.1 `evovae` distinction, tested
/// end-to-end through the evaluator with two different states.
#[test]
fn deferred_parameters_reevaluate_per_state() {
    let src = "fun evovae(~x) { let v = x; always[0] (x == v) }\n\
               let ~p = evovae(`li`.count);\n\
               check p with noop!;";
    let compiled = specstrom::load(src).unwrap();
    let thunk = compiled.property_thunk("p").unwrap();

    // State A: two items. The `always` body freezes v = 2 at expansion.
    let snap_a = snapshot(&["a".into(), "b".into()]);
    let ctx_a = EvalCtx::with_state(&snap_a, 0);
    let mut evaluator = quickltl::Evaluator::new(quickltl::Formula::Atom(thunk));
    let r1 = evaluator
        .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx_a))
        .unwrap();
    assert!(matches!(r1, quickltl::StepReport::Continue { .. }));

    // State B: one item — x re-evaluates to 1, v (captured eagerly inside
    // the block at the state where `always` unrolled) stays 2 → violation.
    let snap_b = snapshot(&["a".into()]);
    let ctx_b = EvalCtx::with_state(&snap_b, 0);
    let r2 = evaluator
        .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx_b))
        .unwrap();
    assert_eq!(r2, quickltl::StepReport::Definitive(false));
}

/// Eager parameters would make `evovae` trivially true (§3.1's point).
#[test]
fn eager_capture_is_trivially_constant() {
    let src = "fun trivial(x) { let v = x; always[0] (x == v) }\n\
               let ~p = trivial(`li`.count);\n\
               check p with noop!;";
    let compiled = specstrom::load(src).unwrap();
    let thunk = compiled.property_thunk("p").unwrap();
    let snap_a = snapshot(&["a".into(), "b".into()]);
    let snap_b = snapshot(&[]);
    let mut evaluator = quickltl::Evaluator::new(quickltl::Formula::Atom(thunk));
    // Whatever the state does, x and v were both captured at call time.
    for snap in [&snap_a, &snap_b, &snap_a] {
        let ctx = EvalCtx::with_state(snap, 0);
        let report = evaluator
            .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx))
            .unwrap();
        assert!(
            !matches!(report, quickltl::StepReport::Definitive(false)),
            "eager capture cannot be violated"
        );
    }
}
