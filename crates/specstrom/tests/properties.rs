//! Property-based tests for the Specstrom interpreter: algebraic laws of
//! the value operations, logical-lifting coherence, evaluation-control
//! semantics, and the differential suite pinning the compiled evaluator to
//! the reference tree-walk.

use proptest::prelude::*;
use quickstrom_protocol::{ElementState, Selector, StateSnapshot};
use specstrom::{compile_expr, eval, initial_env, parse_expr, reference, EvalCtx, Value};

fn snapshot(texts: &[String]) -> StateSnapshot {
    let mut s = StateSnapshot::new();
    s.insert_query(
        Selector::new("li"),
        texts.iter().map(ElementState::with_text).collect(),
    );
    s.happened.push("loaded?".into());
    s
}

fn eval_src(src: &str, snap: &StateSnapshot) -> Result<Value, specstrom::EvalError> {
    let expr = parse_expr(src).map_err(|e| specstrom::EvalError::new(e.to_string()))?;
    let ir = compile_expr(&expr).map_err(|e| specstrom::EvalError::new(e.to_string()))?;
    let ctx = EvalCtx::with_state(snap, 5);
    eval::eval(&ir, &initial_env(), &ctx)
}

fn eval_int(src: &str) -> Option<i64> {
    match eval_src(src, &snapshot(&[])) {
        Ok(Value::Int(n)) => Some(n),
        _ => None,
    }
}

fn eval_bool(src: &str, snap: &StateSnapshot) -> Option<bool> {
    match eval_src(src, snap) {
        Ok(Value::Bool(b)) => Some(b),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Integer arithmetic follows the expected ring laws (within range).
    #[test]
    fn arithmetic_laws(a in -10_000i64..10_000, b in -10_000i64..10_000, c in -100i64..100) {
        prop_assert_eq!(eval_int(&format!("{a} + {b}")), Some(a + b));
        prop_assert_eq!(eval_int(&format!("{a} * ({b} + {c})")), Some(a * (b + c)));
        prop_assert_eq!(
            eval_int(&format!("{a} + {b}")),
            eval_int(&format!("{b} + {a}"))
        );
        if c != 0 {
            prop_assert_eq!(eval_int(&format!("{a} % {c}")), Some(a % c));
        }
    }

    /// Comparison is a total order consistent with Rust's.
    #[test]
    fn comparison_is_consistent(a in -1000i64..1000, b in -1000i64..1000) {
        let snap = snapshot(&[]);
        prop_assert_eq!(eval_bool(&format!("{a} < {b}"), &snap), Some(a < b));
        prop_assert_eq!(eval_bool(&format!("{a} <= {b}"), &snap), Some(a <= b));
        prop_assert_eq!(eval_bool(&format!("{a} == {b}"), &snap), Some(a == b));
        // Exactly one of <, ==, > holds.
        let lt = a < b;
        let eq = a == b;
        let gt = a > b;
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
    }

    /// Boolean operators over plain booleans are the boolean algebra.
    #[test]
    fn boolean_algebra(a in any::<bool>(), b in any::<bool>()) {
        let snap = snapshot(&[]);
        prop_assert_eq!(eval_bool(&format!("{a} && {b}"), &snap), Some(a && b));
        prop_assert_eq!(eval_bool(&format!("{a} || {b}"), &snap), Some(a || b));
        prop_assert_eq!(eval_bool(&format!("!{a}"), &snap), Some(!a));
        prop_assert_eq!(eval_bool(&format!("{a} ==> {b}"), &snap), Some(!a || b));
        // De Morgan.
        prop_assert_eq!(
            eval_bool(&format!("!({a} && {b})"), &snap),
            eval_bool(&format!("!{a} || !{b}"), &snap)
        );
    }

    /// String builtins agree with Rust's string operations.
    #[test]
    fn string_builtins(s in "[a-z ]{0,12}", t in "[a-z]{0,4}") {
        let snap = snapshot(&[]);
        prop_assert_eq!(
            eval_bool(&format!("contains({s:?}, {t:?})"), &snap),
            Some(s.contains(&t))
        );
        prop_assert_eq!(
            eval_bool(&format!("startsWith({s:?}, {t:?})"), &snap),
            Some(s.starts_with(&t))
        );
        prop_assert_eq!(
            eval_bool(&format!("trim({s:?}) == {:?}", s.trim()), &snap),
            Some(true)
        );
        match eval_src(&format!("length({s:?})"), &snap) {
            Ok(Value::Int(n)) => prop_assert_eq!(n as usize, s.chars().count()),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// `texts` and `.count` agree with the snapshot contents.
    #[test]
    fn state_projections_agree(texts in prop::collection::vec("[a-z]{1,6}", 0..6)) {
        let snap = snapshot(&texts);
        match eval_src("`li`.count", &snap) {
            Ok(Value::Int(n)) => prop_assert_eq!(n as usize, texts.len()),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        prop_assert_eq!(
            eval_bool("`li`.present", &snap),
            Some(!texts.is_empty())
        );
        match eval_src("texts(`li`)", &snap) {
            Ok(Value::List(items)) => {
                prop_assert_eq!(items.len(), texts.len());
                for (v, t) in items.iter().zip(&texts) {
                    prop_assert!(v.loosely_equals(&Value::str(t)));
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        // Indexing agrees with .all.
        if !texts.is_empty() {
            prop_assert_eq!(
                eval_bool(&format!("`li`[0].text == {:?}", texts[0]), &snap),
                Some(true)
            );
        }
        prop_assert_eq!(
            eval_bool(&format!("`li`[{}] == null", texts.len()), &snap),
            Some(true)
        );
    }

    /// List equality is structural; append/length interact correctly.
    #[test]
    fn list_laws(xs in prop::collection::vec(-50i64..50, 0..6), x in -50i64..50) {
        let snap = snapshot(&[]);
        let list = format!(
            "[{}]",
            xs.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(eval_bool(&format!("{list} == {list}"), &snap), Some(true));
        prop_assert_eq!(
            eval_bool(&format!("length(append({list}, {x})) == length({list}) + 1"), &snap),
            Some(true)
        );
        prop_assert_eq!(
            eval_bool(&format!("contains(append({list}, {x}), {x})"), &snap),
            Some(true)
        );
        prop_assert_eq!(
            eval_bool(&format!("{x} in append({list}, {x})"), &snap),
            Some(true)
        );
    }

    /// map/filter/all/any satisfy their defining equations against a
    /// Specstrom-defined predicate.
    #[test]
    fn higher_order_laws(xs in prop::collection::vec(-50i64..50, 0..8)) {
        let list = format!(
            "[{}]",
            xs.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        );
        let src = format!(
            "fun pos(x) = x > 0;\n\
             let allPos = all(pos, {list});\n\
             let anyPos = any(pos, {list});\n\
             let count = length(filter(pos, {list}));\n\
             let ~p = allPos == {} && anyPos == {} && count == {};\n\
             check p with noop!;",
            xs.iter().all(|x| *x > 0),
            xs.iter().any(|x| *x > 0),
            xs.iter().filter(|x| **x > 0).count(),
        );
        let compiled = specstrom::load(&src).unwrap_or_else(|e| panic!("{e}"));
        let thunk = compiled.property_thunk("p").unwrap();
        let snap = snapshot(&[]);
        let ctx = EvalCtx::with_state(&snap, 0);
        let formula = specstrom::expand_thunk(&thunk, &ctx).unwrap();
        prop_assert_eq!(formula, quickstrom_protocol_formula_top());
    }
}

/// `Formula::Top` with the thunk atom type, for comparison.
fn quickstrom_protocol_formula_top() -> quickltl::Formula<specstrom::Thunk> {
    quickltl::Formula::Top
}

/// Deferred vs eager evaluation: the §3.1 `evovae` distinction, tested
/// end-to-end through the evaluator with two different states.
#[test]
fn deferred_parameters_reevaluate_per_state() {
    let src = "fun evovae(~x) { let v = x; always[0] (x == v) }\n\
               let ~p = evovae(`li`.count);\n\
               check p with noop!;";
    let compiled = specstrom::load(src).unwrap();
    let thunk = compiled.property_thunk("p").unwrap();

    // State A: two items. The `always` body freezes v = 2 at expansion.
    let snap_a = snapshot(&["a".into(), "b".into()]);
    let ctx_a = EvalCtx::with_state(&snap_a, 0);
    let mut evaluator = quickltl::Evaluator::new(quickltl::Formula::Atom(thunk));
    let r1 = evaluator
        .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx_a))
        .unwrap();
    assert!(matches!(r1, quickltl::StepReport::Continue { .. }));

    // State B: one item — x re-evaluates to 1, v (captured eagerly inside
    // the block at the state where `always` unrolled) stays 2 → violation.
    let snap_b = snapshot(&["a".into()]);
    let ctx_b = EvalCtx::with_state(&snap_b, 0);
    let r2 = evaluator
        .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx_b))
        .unwrap();
    assert_eq!(r2, quickltl::StepReport::Definitive(false));
}

// ---------------------------------------------------------------------
// Differential suite: compiled evaluator ≡ reference tree-walk.
//
// The compilation pass (interning, slot resolution, IR lowering) must be
// semantically invisible. These properties generate random well-scoped
// expressions, evaluate them through both pipelines against the same
// snapshot, and require agreement — on values, on formula structure (atoms
// compared by their printed source), and on error/success outcome.
// ---------------------------------------------------------------------

/// Structural agreement between a compiled value and a reference value.
fn values_agree(c: &Value, r: &reference::Value) -> bool {
    use reference::Value as R;
    match (c, r) {
        (Value::Null, R::Null) => true,
        (Value::Bool(a), R::Bool(b)) => a == b,
        (Value::Int(a), R::Int(b)) => a == b,
        (Value::Float(a), R::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
        (Value::Str(a), R::Str(b)) => a == b,
        (Value::Selector(a), R::Selector(b)) => a == b,
        (Value::List(a), R::List(b)) => {
            a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| values_agree(x, y))
        }
        (Value::Record(a), R::Record(b)) => {
            a.len() == b.len()
                && a.iter()
                    .all(|(k, v)| b.get(k.as_str()).is_some_and(|w| values_agree(v, w)))
        }
        (Value::Formula(a), R::Formula(b)) => formulas_agree(a, b),
        (Value::Builtin(a), R::Builtin(b)) => a == b,
        (Value::Closure(a), R::Closure(b)) => a.name.as_str() == b.name,
        (Value::Action(a), R::Action(b)) => a.name == b.name && a.event == b.event,
        _ => false,
    }
}

/// Formula agreement: same shape, same demands, atoms printing the same
/// source text (thunk environments are representation-specific and cannot
/// be compared directly; the bundled-spec differential suite in the bench
/// crate compares them behaviourally, by progression).
fn formulas_agree(
    c: &quickltl::Formula<specstrom::Thunk>,
    r: &quickltl::Formula<reference::Thunk>,
) -> bool {
    use quickltl::Formula as F;
    match (c, r) {
        (F::Top, F::Top) | (F::Bottom, F::Bottom) => true,
        (F::Atom(a), F::Atom(b)) => a.to_string() == b.to_string(),
        (F::Not(a), F::Not(b))
        | (F::Next(a), F::Next(b))
        | (F::WeakNext(a), F::WeakNext(b))
        | (F::StrongNext(a), F::StrongNext(b)) => formulas_agree(a, b),
        (F::And(al, ar), F::And(bl, br)) | (F::Or(al, ar), F::Or(bl, br)) => {
            formulas_agree(al, bl) && formulas_agree(ar, br)
        }
        (F::Always(n, a), F::Always(m, b)) | (F::Eventually(n, a), F::Eventually(m, b)) => {
            n == m && formulas_agree(a, b)
        }
        (F::Until(n, al, ar), F::Until(m, bl, br))
        | (F::Release(n, al, ar), F::Release(m, bl, br)) => {
            n == m && formulas_agree(al, bl) && formulas_agree(ar, br)
        }
        _ => false,
    }
}

/// Evaluates one source expression through both pipelines and asserts
/// agreement.
fn assert_differential(src: &str, snap: &StateSnapshot) {
    let expr = parse_expr(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    let ctx = EvalCtx::with_state(snap, 5);
    let compiled = compile_expr(&expr)
        .map_err(|e| specstrom::EvalError::new(e.to_string()))
        .and_then(|ir| eval::eval(&ir, &initial_env(), &ctx));
    let referenced = reference::eval(&expr, &reference::initial_env(), &ctx);
    match (compiled, referenced) {
        (Ok(c), Ok(r)) => {
            prop_assert!(
                values_agree(&c, &r),
                "divergence on {src:?}: compiled {c} vs reference {r}"
            );
        }
        (Err(_), Err(_)) => {}
        (c, r) => prop_assert!(false, "outcome divergence on {src:?}: {c:?} vs {r:?}"),
    }
}

/// Random well-scoped integer-valued expressions.
fn int_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (-50i64..50).prop_map(|n| format!("{n}")),
            Just("`li`.count".to_owned()),
            Just("parseInt(`li`.text)".to_owned()),
            Just("length(texts(`li`))".to_owned()),
            Just("length(happened)".to_owned()),
        ]
        .boxed()
    } else {
        let inner = int_expr(depth - 1);
        let cond = bool_expr(depth - 1);
        prop_oneof![
            inner.clone(),
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(&["+", "-", "*", "/", "%"][..])
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (cond, inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("if {c} {{ {t} }} else {{ {e} }}")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("{{ let x = {a}; (x + {b}) }}")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("{{ let ~x = {a}; let y = {b}; (x * y) }}")),
            inner.prop_map(|a| format!("-({a})")),
        ]
        .boxed()
    }
}

/// Random well-scoped boolean-valued expressions.
fn bool_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            any::<bool>().prop_map(|b| format!("{b}")),
            Just("`li`.present".to_owned()),
            Just("`li`.text == null".to_owned()),
            Just("\"loaded?\" in happened".to_owned()),
            Just("contains(texts(`li`), \"walk\")".to_owned()),
            Just("startsWith(`li`.text + \"\", \"w\")".to_owned()),
        ]
        .boxed()
    } else {
        let inner = bool_expr(depth - 1);
        let num = int_expr(depth - 1);
        prop_oneof![
            inner.clone(),
            (
                num.clone(),
                num.clone(),
                prop::sample::select(&["==", "!=", "<", "<=", ">", ">="][..])
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(&["&&", "||", "==>"][..])
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            inner.clone().prop_map(|a| format!("!({a})")),
            (num.clone(), num).prop_map(|(a, b)| format!("({a} in [{b}, {a}])")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("{{ let p = {a}; (p == ({b})) }}")),
        ]
        .boxed()
    }
}

/// Random logical expressions that may lift into temporal formulae.
fn logical_expr(depth: u32) -> BoxedStrategy<String> {
    let b = bool_expr(depth);
    if depth == 0 {
        b
    } else {
        let inner = logical_expr(depth - 1);
        prop_oneof![
            b.clone(),
            (0u32..4, inner.clone()).prop_map(|(n, a)| format!("always[{n}] ({a})")),
            (0u32..4, inner.clone()).prop_map(|(n, a)| format!("eventually[{n}] ({a})")),
            inner.clone().prop_map(|a| format!("next ({a})")),
            inner.clone().prop_map(|a| format!("nextW ({a})")),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| format!("(({a}) until[2] ({c}))")),
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(&["&&", "||", "==>"][..])
            )
                .prop_map(|(a, c, op)| format!("(({a}) {op} ({c}))")),
            inner.prop_map(|a| format!("!({a})")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled ≡ reference on generated integer expressions (values,
    /// errors, blocks, deferred lets, state projections).
    #[test]
    fn differential_int_expressions(
        src in int_expr(3),
        texts in prop::collection::vec("[a-z0-9]{0,5}", 0..4),
    ) {
        assert_differential(&src, &snapshot(&texts));
    }

    /// Compiled ≡ reference on generated boolean expressions.
    #[test]
    fn differential_bool_expressions(
        src in bool_expr(3),
        texts in prop::collection::vec("[a-z ]{0,6}", 0..4),
    ) {
        assert_differential(&src, &snapshot(&texts));
    }

    /// Compiled ≡ reference on generated temporal expressions: the lifted
    /// formulae agree structurally, atom by atom.
    #[test]
    fn differential_temporal_expressions(
        src in logical_expr(3),
        texts in prop::collection::vec("[a-z]{0,4}", 0..3),
    ) {
        assert_differential(&src, &snapshot(&texts));
    }

    /// Compiled ≡ reference on element records: `.all`, indexing, member
    /// access and record indexing agree (record keys are interned on one
    /// side and strings on the other).
    #[test]
    fn differential_element_records(texts in prop::collection::vec("[a-z]{1,5}", 1..4)) {
        let snap = snapshot(&texts);
        for src in [
            "`li`.all",
            "`li`[0]",
            "`li`.all[0].text",
            "`li`[0].attributes",
            "`li`.all[0][\"text\"]",
            "`li`.all[0][\"classes\"]",
        ] {
            assert_differential(src, &snap);
        }
    }
}

/// Eager parameters would make `evovae` trivially true (§3.1's point).
#[test]
fn eager_capture_is_trivially_constant() {
    let src = "fun trivial(x) { let v = x; always[0] (x == v) }\n\
               let ~p = trivial(`li`.count);\n\
               check p with noop!;";
    let compiled = specstrom::load(src).unwrap();
    let thunk = compiled.property_thunk("p").unwrap();
    let snap_a = snapshot(&["a".into(), "b".into()]);
    let snap_b = snapshot(&[]);
    let mut evaluator = quickltl::Evaluator::new(quickltl::Formula::Atom(thunk));
    // Whatever the state does, x and v were both captured at call time.
    for snap in [&snap_a, &snap_b, &snap_a] {
        let ctx = EvalCtx::with_state(snap, 0);
        let report = evaluator
            .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx))
            .unwrap();
        assert!(
            !matches!(report, quickltl::StepReport::Definitive(false)),
            "eager capture cannot be violated"
        );
    }
}
