//! The footprint soundness property: mutations outside an atom's static
//! footprint are invisible to evaluation.
//!
//! `specstrom::analysis` over-approximates, per atom, the selectors and
//! element fields an expansion can read (plus whether it consults
//! `happened`). The checker's atom cache and the spec-aware fingerprint
//! both lean on that over-approximation, so this suite pins the claim
//! directly: take a compiled spec, a randomly generated state trace, and
//! a randomly generated *out-of-footprint* mutation of every state —
//! noise selectors the spec never reads, plus unread fields of the
//! selectors it does read — and assert that both the per-state atom
//! expansions and the step-by-step verdict sequence are bit-identical
//! between the base trace and the mutated trace.

use proptest::prelude::*;
use quickltl::{Evaluator, Formula, StepReport};
use quickstrom_protocol::{ElementState, Selector, StateSnapshot};
use specstrom::{expand_thunk, pretty_expr, EvalCtx, Thunk};

/// The fixed specification under test. Its masks read exactly:
/// `#title` text, `#flag` visible, `.rows` match-list only (count), and
/// the action target `#btn` match-list only.
const SRC: &str = "\
    let ~title = `#title`.text;\n\
    let ~flagOn = `#flag`.visible;\n\
    action bump! = click!(`#btn`);\n\
    let ~p = always[3] ((title == \"go\" && `.rows`.count > 0) ==> eventually[2] flagOn);\n\
    check p with bump!;\n";

/// One generated state of the base trace.
#[derive(Debug, Clone)]
struct BaseState {
    title: String,
    flag_visible: bool,
    rows: usize,
}

/// One generated out-of-footprint mutation of a state.
#[derive(Debug, Clone)]
struct Mutation {
    /// New `value` for the `#title` element (its mask reads only `text`).
    title_value: String,
    /// New `checked` for the `#title` element.
    title_checked: bool,
    /// New `text` for the `#flag` element (its mask reads only `visible`).
    flag_text: String,
    /// New texts for the `.rows` elements (match-list only: texts are
    /// unread, but the *count* must stay fixed, so this only rewrites).
    row_text: String,
    /// A selector the spec never mentions: arbitrary element count.
    noise_count: usize,
    /// Its arbitrary text payload.
    noise_text: String,
    /// Whether to drop the unread `#ghost` selector entirely.
    drop_ghost: bool,
}

fn base_snapshot(s: &BaseState) -> StateSnapshot {
    let mut snap = StateSnapshot::new();
    snap.insert_query(
        Selector::new("#title"),
        vec![ElementState::with_text(&s.title)],
    );
    let mut flag = ElementState::with_text("flag");
    flag.visible = s.flag_visible;
    snap.insert_query(Selector::new("#flag"), vec![flag]);
    snap.insert_query(
        Selector::new(".rows"),
        (0..s.rows)
            .map(|i| ElementState::with_text(i.to_string()))
            .collect(),
    );
    snap.insert_query(Selector::new("#btn"), vec![ElementState::with_text("go")]);
    // A selector the spec never reads, present in the base trace so the
    // mutation can remove it.
    snap.insert_query(Selector::new("#ghost"), vec![ElementState::with_text("g")]);
    snap.happened.push("loaded?".into());
    snap
}

/// Applies `edit` to a cloned copy of one selector's element list and
/// re-inserts it (query results are structurally shared `Arc`s).
fn edit_query(snap: &mut StateSnapshot, sel: &str, edit: impl FnOnce(&mut Vec<ElementState>)) {
    let sel = Selector::new(sel);
    let mut elems: Vec<ElementState> = snap
        .queries
        .get(&sel)
        .expect("selector present")
        .as_ref()
        .clone();
    edit(&mut elems);
    snap.insert_query(sel, elems);
}

fn mutate_outside_footprint(base: &StateSnapshot, m: &Mutation) -> StateSnapshot {
    let mut snap = base.clone();
    edit_query(&mut snap, "#title", |title| {
        title[0].value = m.title_value.clone();
        title[0].checked = m.title_checked;
        title[0].focused = !title[0].focused;
    });
    edit_query(&mut snap, "#flag", |flag| {
        flag[0].text = m.flag_text.clone();
        flag[0].value = m.flag_text.clone();
    });
    // Match-list-only selectors: the count is load-bearing, the element
    // payloads are not.
    edit_query(&mut snap, ".rows", |rows| {
        for row in rows.iter_mut() {
            row.text = m.row_text.clone();
            row.checked = !row.checked;
        }
    });
    edit_query(&mut snap, "#btn", |btn| {
        btn[0].text = m.flag_text.clone();
        btn[0].enabled = !btn[0].enabled;
    });
    if m.drop_ghost {
        snap.queries.remove(&Selector::new("#ghost"));
    }
    snap.insert_query(
        Selector::new("#unseen"),
        (0..m.noise_count)
            .map(|_| ElementState::with_text(&m.noise_text))
            .collect(),
    );
    snap
}

/// The expansion of an atom with sub-atoms projected to their source
/// text: environments allocated during expansion differ pointer-wise
/// between two expansions, so structural comparison goes through the IR.
fn expansion_shape(thunk: &Thunk, ctx: &EvalCtx) -> Formula<String> {
    expand_thunk(thunk, ctx)
        .expect("expansion succeeds")
        .map_atoms(&mut |t: Thunk| pretty_expr(&t.ir.to_expr()))
}

fn base_state_strategy() -> impl Strategy<Value = BaseState> {
    (
        prop_oneof![Just("go".to_owned()), Just("stop".to_owned()), ".*"],
        any::<bool>(),
        0usize..3,
    )
        .prop_map(|(title, flag_visible, rows)| BaseState {
            title,
            flag_visible,
            rows,
        })
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    (
        ".*",
        any::<bool>(),
        ".*",
        ".*",
        0usize..4,
        ".*",
        any::<bool>(),
    )
        .prop_map(
            |(
                title_value,
                title_checked,
                flag_text,
                row_text,
                noise_count,
                noise_text,
                drop_ghost,
            )| {
                Mutation {
                    title_value,
                    title_checked,
                    flag_text,
                    row_text,
                    noise_count,
                    noise_text,
                    drop_ghost,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-atom: expanding the property's atoms in a state and in its
    /// out-of-footprint mutation yields structurally identical formulas,
    /// and the full evaluator produces the identical verdict sequence
    /// over the whole trace.
    #[test]
    fn out_of_footprint_mutations_are_invisible(
        trace in prop::collection::vec(base_state_strategy(), 1..6),
        mutations in prop::collection::vec(mutation_strategy(), 6..7),
    ) {
        let compiled = specstrom::load(SRC).expect("spec compiles");
        let thunk = compiled.property_thunk("p").expect("property exists");

        let mut base_eval = Evaluator::new(Formula::Atom(thunk.clone()));
        let mut mutated_eval = Evaluator::new(Formula::Atom(thunk.clone()));
        for (state, mutation) in trace.iter().zip(&mutations) {
            let base = base_snapshot(state);
            let mutated = mutate_outside_footprint(&base, mutation);
            let base_ctx = EvalCtx::with_state(&base, 3);
            let mutated_ctx = EvalCtx::with_state(&mutated, 3);

            // Atom value: the expansion itself is unchanged.
            prop_assert_eq!(
                expansion_shape(&thunk, &base_ctx),
                expansion_shape(&thunk, &mutated_ctx)
            );

            // Step verdict: the progressing evaluators stay in lockstep.
            let base_report: StepReport = base_eval
                .observe_expanding(&mut |t| expand_thunk(t, &base_ctx))
                .expect("no eval error");
            let mutated_report = mutated_eval
                .observe_expanding(&mut |t| expand_thunk(t, &mutated_ctx))
                .expect("no eval error");
            prop_assert_eq!(base_report, mutated_report);
        }
    }

    /// The analysis masks really cover the spec: every selector the base
    /// snapshot mutation machinery treats as read is present, and the
    /// noise selectors are absent.
    #[test]
    fn masks_match_the_mutation_contract(_x in 0u8..1) {
        let compiled = specstrom::load(SRC).expect("spec compiles");
        let masks = &compiled.analysis.masks;
        prop_assert!(masks.get(&Selector::new("#title")).is_some_and(|m| m.text && !m.value));
        prop_assert!(masks.get(&Selector::new("#flag")).is_some_and(|m| m.visible && !m.text));
        prop_assert!(masks.get(&Selector::new(".rows")).is_some_and(|m| !m.any()));
        prop_assert!(masks.get(&Selector::new("#btn")).is_some_and(|m| !m.any()));
        prop_assert!(masks.get(&Selector::new("#ghost")).is_none());
        prop_assert!(masks.get(&Selector::new("#unseen")).is_none());
    }
}
