//! # quickstrom-executor
//!
//! The web executor: drives a [`webdom`] application behind the Quickstrom
//! checker protocol (§3.4), playing the role the Selenium-WebDriver-based
//! executor plays in the original system.
//!
//! On [`Start`](CheckerMsg::Start) it boots the app, instruments the
//! dependency selectors, and reports the `loaded?` event. Actions are
//! resolved against the rendered document (selector + match index), routed
//! through event-handler bubbling, and answered with
//! [`Acted`](ExecutorMsg::Acted). Asynchronous work — app timers on the
//! virtual clock — fires during a small *deliberation* time charged while
//! the checker is thinking, and surfaces as `changed?`
//! [`Event`](ExecutorMsg::Event)s; a checker `Act` carrying a stale trace
//! version is ignored, exactly reproducing the Figure 10 race,
//! deterministically.
//!
//! ## The incremental snapshot pipeline
//!
//! Observation is dirty-tracked end to end. Rendering goes through a
//! [`webdom::RenderCache`]: an unchanged view tree costs one comparison
//! instead of a re-render, and each dependency selector's projected
//! results are memoised per render generation — so unchanged documents
//! answer every query without matching a single node, and pointer
//! equality of the memoised [`QueryResults`] is a complete change test.
//! After the initial full [`StateSnapshot`], every message ships a
//! [`SnapshotDelta`] (per-selector element edits, monotone
//! `state_version`) instead of a full state; the executor's record of
//! "the last reported state" is just the memoised query handles plus that
//! version number — no second snapshot copy exists anywhere.
//! [`Executor::transport_stats`] reports what the wire carried versus the
//! full-snapshot counterfactual. Set
//! [`WebExecutorConfig::full_snapshots`] to ship complete snapshots
//! instead; the two modes are observably identical (the differential
//! tests pin verdicts, states and shrunk counterexamples bit-for-bit).
//!
//! The virtual clock makes every run replayable: given the same action
//! script, the same trace results — which is what the checker's shrinker
//! relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use quickstrom_protocol::{
    ActionInstance, ActionKind, CheckerMsg, Executor, ExecutorMsg, Key, QueryResults, Selector,
    SnapshotDelta, StateSnapshot, StateUpdate, TransportStats, DELTA_FORMAT_VERSION,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use webdom::{
    App, AppCtx, EventKind, LocalStorage, Payload, RenderCache, SelectorExpr, VirtualClock,
};

/// Configuration for a [`WebExecutor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebExecutorConfig {
    /// Virtual milliseconds charged per checker message, during which due
    /// timers may fire (this is what makes the Figure 10 stale-action race
    /// reachable, deterministically).
    pub deliberation_ms: u64,
    /// Ship [`SnapshotDelta`]s after the initial full snapshot (the
    /// default). With `false`, every message carries a complete
    /// [`StateSnapshot`] — observably identical, just more bytes.
    pub deltas: bool,
}

impl Default for WebExecutorConfig {
    fn default() -> Self {
        WebExecutorConfig {
            deliberation_ms: 1,
            deltas: true,
        }
    }
}

impl WebExecutorConfig {
    /// The default configuration with delta shipping disabled — every
    /// state goes out as a full snapshot (the pre-incremental protocol,
    /// kept for differential testing and as a cross-process fallback).
    #[must_use]
    pub fn full_snapshots() -> Self {
        WebExecutorConfig {
            deltas: false,
            ..WebExecutorConfig::default()
        }
    }
}

/// An executor hosting one [`App`] on a virtual DOM and a virtual clock.
///
/// `WebExecutor<A>` is `Send` whenever the app is: the checker's parallel
/// runtime constructs one executor per worker thread (the factory closure
/// handed to `check_spec` must be `Sync`), and nothing in here touches
/// thread-local or shared state.
pub struct WebExecutor<A> {
    factory: Box<dyn Fn() -> A + Send + Sync>,
    app: A,
    clock: VirtualClock,
    storage: LocalStorage,
    dependencies: Vec<(Selector, SelectorExpr)>,
    /// Dirty-tracked rendering and per-selector query memoisation.
    cache: RenderCache,
    /// The query results of the last reported state, positionally aligned
    /// with `dependencies` — shared handles into the cache, not a snapshot
    /// copy. Together with `trace_len` (the state version) this *is* the
    /// executor's record of what the checker knows.
    last_queries: Vec<QueryResults>,
    /// Per-selector wire-size contributions of `last_queries` (aligned
    /// with `dependencies`), and their sum — the O(changed)-maintained
    /// full-snapshot counterfactual behind [`TransportStats::full_bytes`].
    query_sizes: Vec<usize>,
    full_queries_bytes: usize,
    /// Whether the initial full snapshot has been sent (deltas only ever
    /// follow a full base).
    sent_initial: bool,
    trace_len: u64,
    started: bool,
    stats: TransportStats,
    config: WebExecutorConfig,
}

impl<A> std::fmt::Debug for WebExecutor<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebExecutor")
            .field("trace_len", &self.trace_len)
            .field("now_ms", &self.clock.now_ms())
            .field("started", &self.started)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<A: App> WebExecutor<A> {
    /// Creates an executor; `factory` builds the app (and rebuilds it on
    /// `reload!`, with storage preserved).
    pub fn new(factory: impl Fn() -> A + Send + Sync + 'static) -> Self {
        Self::with_config(factory, WebExecutorConfig::default())
    }

    /// Creates an executor with explicit configuration.
    pub fn with_config(
        factory: impl Fn() -> A + Send + Sync + 'static,
        config: WebExecutorConfig,
    ) -> Self {
        let app = factory();
        WebExecutor {
            factory: Box::new(factory),
            app,
            clock: VirtualClock::new(),
            storage: LocalStorage::new(),
            dependencies: Vec::new(),
            cache: RenderCache::new(),
            last_queries: Vec::new(),
            query_sizes: Vec::new(),
            full_queries_bytes: 0,
            sent_initial: false,
            trace_len: 0,
            started: false,
            stats: TransportStats::default(),
            config,
        }
    }

    /// The current virtual time (useful in tests and benchmarks: running
    /// time in the simulated world).
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Renders the current view through the dirty-tracking cache and
    /// returns the memoised query results of every dependency selector,
    /// positionally aligned with `dependencies`.
    fn current_queries(&mut self) -> Vec<QueryResults> {
        self.cache.render(self.app.view());
        let cache = &mut self.cache;
        self.dependencies
            .iter()
            .map(|(selector, expr)| cache.query(*selector, expr))
            .collect()
    }

    /// The dependency indices whose results changed since the last
    /// reported state. Pointer equality is a complete test here: the
    /// render cache revalidates (returns the previous allocation for)
    /// every selector whose projections came out unchanged.
    fn changed_since_last(&self, queries: &[QueryResults]) -> Vec<usize> {
        queries
            .iter()
            .enumerate()
            .filter(|(i, results)| match self.last_queries.get(*i) {
                Some(last) => !Arc::ptr_eq(last, results),
                None => true,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Maps changed dependency indices to their selectors, in selector
    /// order (the order events report in their `detail`).
    fn changed_selectors(&self, changed: &[usize]) -> Vec<Selector> {
        let mut selectors: Vec<Selector> =
            changed.iter().map(|&i| self.dependencies[i].0).collect();
        selectors.sort();
        selectors.dedup();
        selectors
    }

    /// Books a new state: bumps the version, maintains the wire-size
    /// counterfactual, records transport stats, and returns the update to
    /// ship — the initial (or full-mode) snapshot, or a delta against the
    /// previous state.
    fn emit_state(&mut self, queries: Vec<QueryResults>, changed: &[usize]) -> StateUpdate {
        let timestamp_ms = self.clock.now_ms();
        self.trace_len += 1;
        self.query_sizes.resize(queries.len(), 0);
        for &i in changed {
            let entry = StateSnapshot::query_wire_size(&self.dependencies[i].0, &queries[i]);
            let old = std::mem::replace(&mut self.query_sizes[i], entry);
            self.full_queries_bytes = self.full_queries_bytes - old + entry;
        }
        // What a full snapshot of this state would cost on the wire.
        let full_equivalent = StateSnapshot::full_update_wire_size(self.full_queries_bytes);
        let delta = if self.config.deltas && self.sent_initial {
            let mut changes = BTreeMap::new();
            for &i in changed {
                let base = self.last_queries.get(i).map_or(&[][..], |r| r);
                // The change list only holds provably changed selectors
                // (pointer inequality), so the element-level diff is
                // always Some — but tolerate None rather than ship an
                // empty edit.
                if let Some(edit) = quickstrom_protocol::delta::diff_results(base, &queries[i]) {
                    changes.insert(self.dependencies[i].0, edit);
                }
            }
            let delta = SnapshotDelta {
                format: DELTA_FORMAT_VERSION,
                state_version: self.trace_len,
                changes,
                happened: Vec::new(),
                timestamp_ms,
            };
            // Adaptive fallback: a step that rewrote most of the document
            // (a re-sort, a filter flip) produces a delta as large as the
            // snapshot itself — then the full form is strictly better, on
            // the wire *and* in process (the receiver reuses its shared
            // allocations instead of patching element lists).
            if 1 + delta.wire_size() < full_equivalent {
                Some(delta)
            } else {
                None
            }
        } else {
            None
        };
        let update = match delta {
            Some(delta) => StateUpdate::Delta(delta),
            None => {
                self.sent_initial = true;
                StateUpdate::Full(StateSnapshot {
                    queries: self
                        .dependencies
                        .iter()
                        .zip(&queries)
                        .map(|((selector, _), results)| (*selector, Arc::clone(results)))
                        .collect(),
                    happened: Vec::new(),
                    timestamp_ms,
                })
            }
        };
        self.stats.record(&update, full_equivalent, changed.len());
        self.last_queries = queries;
        update
    }

    /// Observes the current state and, when any instrumented selector
    /// changed, emits a `changed?` event carrying the update.
    fn emit_if_changed(&mut self, out: &mut Vec<ExecutorMsg>) {
        let queries = self.current_queries();
        let changed = self.changed_since_last(&queries);
        if changed.is_empty() {
            return;
        }
        let detail = self.changed_selectors(&changed);
        let update = self.emit_state(queries, &changed);
        out.push(ExecutorMsg::Event {
            event: "changed?".to_owned(),
            detail,
            state: update,
        });
    }

    /// Fires app timers due within the next `delta_ms` of virtual time; for
    /// each visible state change, emits a `changed?` event and bumps the
    /// trace.
    fn pump(&mut self, delta_ms: u64, out: &mut Vec<ExecutorMsg>) {
        let fired = self.clock.advance(delta_ms);
        for (_, tag) in fired {
            let mut ctx = AppCtx {
                clock: &mut self.clock,
                storage: &mut self.storage,
            };
            self.app.on_timer(&tag, &mut ctx);
            self.emit_if_changed(out);
        }
    }

    /// Advances virtual time until an observable event fires or `time_ms`
    /// elapses; emits either the `changed?` event or a `Timeout`.
    fn wait_for_event_or_timeout(&mut self, time_ms: u64, out: &mut Vec<ExecutorMsg>) {
        let deadline = self.clock.now_ms().saturating_add(time_ms);
        loop {
            match self.clock.next_due() {
                Some(due) if due <= deadline => {
                    let fired = self.clock.advance_to(due);
                    for (_, tag) in fired {
                        let mut ctx = AppCtx {
                            clock: &mut self.clock,
                            storage: &mut self.storage,
                        };
                        self.app.on_timer(&tag, &mut ctx);
                    }
                    let before = out.len();
                    self.emit_if_changed(out);
                    if out.len() != before {
                        return; // an event interrupted the wait
                    }
                }
                _ => {
                    self.clock.advance_to(deadline);
                    let queries = self.current_queries();
                    let changed = self.changed_since_last(&queries);
                    let update = self.emit_state(queries, &changed);
                    out.push(ExecutorMsg::Timeout { state: update });
                    return;
                }
            }
        }
    }

    fn boot(&mut self, out: &mut Vec<ExecutorMsg>) {
        let mut ctx = AppCtx {
            clock: &mut self.clock,
            storage: &mut self.storage,
        };
        self.app.start(&mut ctx);
        let queries = self.current_queries();
        let changed: Vec<usize> = (0..queries.len()).collect();
        let update = self.emit_state(queries, &changed);
        out.push(ExecutorMsg::Event {
            event: "loaded?".to_owned(),
            detail: Vec::new(),
            state: update,
        });
    }

    /// Performs one action against the rendered document.
    ///
    /// Actions on vanished, invisible or disabled targets are no-ops that
    /// still produce an `Acted` state — a real user's click lands on
    /// whatever is (not) there.
    fn perform(&mut self, action: &ActionInstance, out: &mut Vec<ExecutorMsg>) {
        match &action.kind {
            ActionKind::Noop => {}
            ActionKind::Reload => {
                // Rebuild the app; persistent storage survives, timers die.
                self.clock.cancel_all();
                self.app = (self.factory)();
                let mut ctx = AppCtx {
                    clock: &mut self.clock,
                    storage: &mut self.storage,
                };
                self.app.start(&mut ctx);
            }
            kind => {
                // After Start, the cached document is always current at
                // message entry: every path that mutates the app (boot,
                // pump, perform, reload) re-renders before handing control
                // back, so the checker's (selector, index) target resolves
                // against exactly the state it was chosen from. An Act
                // before Start is protocol misuse (debug-asserted in
                // `send`), but must stay a well-defined no-op reply in
                // release builds, not a cache panic — render on demand.
                if !self.started {
                    self.cache.render(self.app.view());
                }
                let doc = self.cache.document();
                let target = action.target.as_ref().and_then(|(selector, index)| {
                    let expr = SelectorExpr::parse(selector.as_str()).ok()?;
                    doc.select(&expr).get(*index).copied()
                });
                if let Some(node) = target {
                    if doc.visible(node) && doc.enabled(node) {
                        let (event_kind, payload) = match kind {
                            ActionKind::Click => (EventKind::Click, Payload::None),
                            ActionKind::DblClick => (EventKind::DblClick, Payload::None),
                            ActionKind::Focus => (EventKind::Focus, Payload::None),
                            ActionKind::Input(text) => (
                                EventKind::Input,
                                Payload::Text(text.clone().unwrap_or_default()),
                            ),
                            ActionKind::KeyPress(key) => (
                                EventKind::KeyDown,
                                Payload::Key(match key {
                                    Key::Enter => "Enter".to_owned(),
                                    Key::Escape => "Escape".to_owned(),
                                    Key::Char(c) => c.to_string(),
                                }),
                            ),
                            ActionKind::Noop | ActionKind::Reload => {
                                unreachable!("handled above")
                            }
                        };
                        if let Some(msg) = doc.handler(node, event_kind) {
                            let msg = msg.to_owned();
                            let mut ctx = AppCtx {
                                clock: &mut self.clock,
                                storage: &mut self.storage,
                            };
                            self.app.on_event(&msg, &payload, &mut ctx);
                        }
                    }
                }
            }
        }
        let queries = self.current_queries();
        let changed = self.changed_since_last(&queries);
        let update = self.emit_state(queries, &changed);
        out.push(ExecutorMsg::Acted { state: update });
    }
}

impl<A: App> Executor for WebExecutor<A> {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        let mut out = Vec::new();
        match msg {
            CheckerMsg::Start { dependencies } => {
                self.dependencies = dependencies
                    .into_iter()
                    .map(|sel| {
                        let expr = SelectorExpr::parse(sel.as_str())
                            .unwrap_or_else(|e| panic!("invalid dependency selector {sel}: {e}"));
                        (sel, expr)
                    })
                    .collect();
                // A Start opens a *new session*: versions restart from
                // zero and the first state must be a full snapshot again
                // (a delta against a previous session's base — possibly
                // over a different dependency list — would be rejected or,
                // worse, mis-applied by a fresh checker).
                self.last_queries = Vec::new();
                self.query_sizes = Vec::new();
                self.full_queries_bytes = 0;
                self.sent_initial = false;
                self.trace_len = 0;
                self.stats = TransportStats::default();
                self.started = true;
                self.boot(&mut out);
                // Immediately-due timers (e.g. zero-delay init work).
                self.pump(0, &mut out);
            }
            CheckerMsg::Act { action, version } => {
                debug_assert!(self.started, "Act before Start");
                // Deliberation: the app lived on while the checker decided.
                self.pump(self.config.deliberation_ms, &mut out);
                if version < self.trace_len {
                    // Stale request (Figure 10): ignore; the pending events
                    // in `out` explain why.
                    return out;
                }
                self.perform(&action, &mut out);
                if let Some(t) = action.timeout_ms {
                    // §3.2: after a timed action, wait for an event or the
                    // timeout before handing control back.
                    self.wait_for_event_or_timeout(t, &mut out);
                }
            }
            CheckerMsg::Wait { time_ms, version } => {
                debug_assert!(self.started, "Wait before Start");
                self.pump(self.config.deliberation_ms, &mut out);
                if version < self.trace_len {
                    return out;
                }
                self.wait_for_event_or_timeout(time_ms, &mut out);
            }
            CheckerMsg::End => {}
        }
        out
    }

    fn transport_stats(&self) -> TransportStats {
        self.stats
    }
}

/// An [`Executor`] decorator that charges a fixed wall-clock delay per
/// checker message, simulating the transport and render latency of a real
/// browser or remote executor (the in-process [`WebExecutor`] answers in
/// microseconds, which makes latency-hiding effects invisible).
///
/// With latency injected, the pipelined runtime's gains become
/// measurable: the evaluator stage progresses formulas while the next
/// `send` is in flight, and a worker multiplexing several sessions
/// (`CheckOptions::multiplex`) overlaps their delays — see the `pipeline`
/// benchmark.
#[derive(Debug)]
pub struct LatencyExecutor<E> {
    inner: E,
    delay: std::time::Duration,
}

impl<E> LatencyExecutor<E> {
    /// Wraps `inner`, sleeping `delay` before every delivered message.
    pub fn new(inner: E, delay: std::time::Duration) -> Self {
        LatencyExecutor { inner, delay }
    }
}

impl<E: Executor> Executor for LatencyExecutor<E> {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        std::thread::sleep(self.delay);
        self.inner.send(msg)
    }

    fn transport_stats(&self) -> TransportStats {
        self.inner.transport_stats()
    }
}

#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}

    /// The parallel check runtime constructs executors on worker threads;
    /// this pins the `Send` guarantee at compile time for a concrete app.
    #[test]
    fn web_executor_is_send_for_send_apps() {
        #[derive(Debug)]
        struct Nop;
        impl App for Nop {
            fn start(&mut self, _: &mut AppCtx<'_>) {}
            fn view(&self) -> webdom::El {
                webdom::El::new("div")
            }
            fn on_event(&mut self, _: &str, _: &Payload, _: &mut AppCtx<'_>) {}
            fn on_timer(&mut self, _: &str, _: &mut AppCtx<'_>) {}
        }
        assert_send::<WebExecutor<Nop>>();
    }
}
