//! # quickstrom-executor
//!
//! The web executor: drives a [`webdom`] application behind the Quickstrom
//! checker protocol (§3.4), playing the role the Selenium-WebDriver-based
//! executor plays in the original system.
//!
//! On [`Start`](CheckerMsg::Start) it boots the app, instruments the
//! dependency selectors, and reports the `loaded?` event. Actions are
//! resolved against the rendered document (selector + match index), routed
//! through event-handler bubbling, and answered with
//! [`Acted`](ExecutorMsg::Acted). Asynchronous work — app timers on the
//! virtual clock — fires during a small *deliberation* time charged while
//! the checker is thinking, and surfaces as `changed?`
//! [`Event`](ExecutorMsg::Event)s; a checker `Act` carrying a stale trace
//! version is ignored, exactly reproducing the Figure 10 race,
//! deterministically.
//!
//! The virtual clock makes every run replayable: given the same action
//! script, the same trace results — which is what the checker's shrinker
//! relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use quickstrom_protocol::{
    ActionInstance, ActionKind, CheckerMsg, ElementState, Executor, ExecutorMsg, Key, Selector,
    StateSnapshot,
};
use webdom::{App, AppCtx, Document, EventKind, LocalStorage, Payload, SelectorExpr, VirtualClock};

/// Configuration for a [`WebExecutor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebExecutorConfig {
    /// Virtual milliseconds charged per checker message, during which due
    /// timers may fire (this is what makes the Figure 10 stale-action race
    /// reachable, deterministically).
    pub deliberation_ms: u64,
}

impl Default for WebExecutorConfig {
    fn default() -> Self {
        WebExecutorConfig { deliberation_ms: 1 }
    }
}

/// An executor hosting one [`App`] on a virtual DOM and a virtual clock.
///
/// `WebExecutor<A>` is `Send` whenever the app is: the checker's parallel
/// runtime constructs one executor per worker thread (the factory closure
/// handed to `check_spec` must be `Sync`), and nothing in here touches
/// thread-local or shared state.
pub struct WebExecutor<A> {
    factory: Box<dyn Fn() -> A + Send + Sync>,
    app: A,
    clock: VirtualClock,
    storage: LocalStorage,
    dependencies: Vec<(Selector, SelectorExpr)>,
    last_snapshot: StateSnapshot,
    trace_len: u64,
    started: bool,
    config: WebExecutorConfig,
}

impl<A> std::fmt::Debug for WebExecutor<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebExecutor")
            .field("trace_len", &self.trace_len)
            .field("now_ms", &self.clock.now_ms())
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<A: App> WebExecutor<A> {
    /// Creates an executor; `factory` builds the app (and rebuilds it on
    /// `reload!`, with storage preserved).
    pub fn new(factory: impl Fn() -> A + Send + Sync + 'static) -> Self {
        Self::with_config(factory, WebExecutorConfig::default())
    }

    /// Creates an executor with explicit configuration.
    pub fn with_config(
        factory: impl Fn() -> A + Send + Sync + 'static,
        config: WebExecutorConfig,
    ) -> Self {
        let app = factory();
        WebExecutor {
            factory: Box::new(factory),
            app,
            clock: VirtualClock::new(),
            storage: LocalStorage::new(),
            dependencies: Vec::new(),
            last_snapshot: StateSnapshot::new(),
            trace_len: 0,
            started: false,
            config,
        }
    }

    /// The current virtual time (useful in tests and benchmarks: running
    /// time in the simulated world).
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    fn render(&self) -> Document {
        Document::render(self.app.view())
    }

    /// Projects one DOM node into the protocol's element state.
    fn project(doc: &Document, id: webdom::NodeId) -> ElementState {
        ElementState {
            text: doc.text_content(id),
            value: doc.value(id).to_owned(),
            checked: doc.checked(id),
            enabled: doc.enabled(id),
            visible: doc.visible(id),
            focused: doc.focused(id),
            classes: doc.classes(id).to_vec(),
            attributes: doc.attributes(id).clone(),
        }
    }

    fn snapshot(&self) -> StateSnapshot {
        let doc = self.render();
        let mut snap = StateSnapshot::new();
        snap.timestamp_ms = self.clock.now_ms();
        for (selector, expr) in &self.dependencies {
            let elements: Vec<ElementState> = doc
                .select(expr)
                .into_iter()
                .map(|id| Self::project(&doc, id))
                .collect();
            snap.queries.insert(*selector, elements);
        }
        snap
    }

    /// Fires app timers due within the next `delta_ms` of virtual time; for
    /// each visible state change, emits a `changed?` event and bumps the
    /// trace.
    fn pump(&mut self, delta_ms: u64, out: &mut Vec<ExecutorMsg>) {
        let fired = self.clock.advance(delta_ms);
        for (_, tag) in fired {
            let mut ctx = AppCtx {
                clock: &mut self.clock,
                storage: &mut self.storage,
            };
            self.app.on_timer(&tag, &mut ctx);
            self.emit_if_changed(out);
        }
    }

    fn emit_if_changed(&mut self, out: &mut Vec<ExecutorMsg>) {
        let snap = self.snapshot();
        if snap.queries_differ(&self.last_snapshot) {
            let detail = self.last_snapshot.changed_selectors(&snap);
            self.last_snapshot = snap.clone();
            self.trace_len += 1;
            out.push(ExecutorMsg::Event {
                event: "changed?".to_owned(),
                detail,
                state: snap,
            });
        }
    }

    /// Advances virtual time until an observable event fires or `time_ms`
    /// elapses; emits either the `changed?` event or a `Timeout`.
    fn wait_for_event_or_timeout(&mut self, time_ms: u64, out: &mut Vec<ExecutorMsg>) {
        let deadline = self.clock.now_ms().saturating_add(time_ms);
        loop {
            match self.clock.next_due() {
                Some(due) if due <= deadline => {
                    let fired = self.clock.advance_to(due);
                    for (_, tag) in fired {
                        let mut ctx = AppCtx {
                            clock: &mut self.clock,
                            storage: &mut self.storage,
                        };
                        self.app.on_timer(&tag, &mut ctx);
                    }
                    let before = out.len();
                    self.emit_if_changed(out);
                    if out.len() != before {
                        return; // an event interrupted the wait
                    }
                }
                _ => {
                    self.clock.advance_to(deadline);
                    let snap = self.snapshot();
                    self.last_snapshot = snap.clone();
                    self.trace_len += 1;
                    out.push(ExecutorMsg::Timeout { state: snap });
                    return;
                }
            }
        }
    }

    fn boot(&mut self, out: &mut Vec<ExecutorMsg>) {
        let mut ctx = AppCtx {
            clock: &mut self.clock,
            storage: &mut self.storage,
        };
        self.app.start(&mut ctx);
        let snap = self.snapshot();
        self.last_snapshot = snap.clone();
        self.trace_len += 1;
        out.push(ExecutorMsg::Event {
            event: "loaded?".to_owned(),
            detail: Vec::new(),
            state: snap,
        });
    }

    /// Performs one action against the rendered document.
    ///
    /// Actions on vanished, invisible or disabled targets are no-ops that
    /// still produce an `Acted` state — a real user's click lands on
    /// whatever is (not) there.
    fn perform(&mut self, action: &ActionInstance, out: &mut Vec<ExecutorMsg>) {
        match &action.kind {
            ActionKind::Noop => {}
            ActionKind::Reload => {
                // Rebuild the app; persistent storage survives, timers die.
                self.clock.cancel_all();
                self.app = (self.factory)();
                let mut ctx = AppCtx {
                    clock: &mut self.clock,
                    storage: &mut self.storage,
                };
                self.app.start(&mut ctx);
            }
            kind => {
                let doc = self.render();
                let target = action.target.as_ref().and_then(|(selector, index)| {
                    let expr = SelectorExpr::parse(selector.as_str()).ok()?;
                    doc.select(&expr).get(*index).copied()
                });
                if let Some(node) = target {
                    if doc.visible(node) && doc.enabled(node) {
                        let (event_kind, payload) = match kind {
                            ActionKind::Click => (EventKind::Click, Payload::None),
                            ActionKind::DblClick => (EventKind::DblClick, Payload::None),
                            ActionKind::Focus => (EventKind::Focus, Payload::None),
                            ActionKind::Input(text) => (
                                EventKind::Input,
                                Payload::Text(text.clone().unwrap_or_default()),
                            ),
                            ActionKind::KeyPress(key) => (
                                EventKind::KeyDown,
                                Payload::Key(match key {
                                    Key::Enter => "Enter".to_owned(),
                                    Key::Escape => "Escape".to_owned(),
                                    Key::Char(c) => c.to_string(),
                                }),
                            ),
                            ActionKind::Noop | ActionKind::Reload => {
                                unreachable!("handled above")
                            }
                        };
                        if let Some(msg) = doc.handler(node, event_kind) {
                            let msg = msg.to_owned();
                            let mut ctx = AppCtx {
                                clock: &mut self.clock,
                                storage: &mut self.storage,
                            };
                            self.app.on_event(&msg, &payload, &mut ctx);
                        }
                    }
                }
            }
        }
        let snap = self.snapshot();
        self.last_snapshot = snap.clone();
        self.trace_len += 1;
        out.push(ExecutorMsg::Acted { state: snap });
    }
}

impl<A: App> Executor for WebExecutor<A> {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        let mut out = Vec::new();
        match msg {
            CheckerMsg::Start { dependencies } => {
                self.dependencies = dependencies
                    .into_iter()
                    .map(|sel| {
                        let expr = SelectorExpr::parse(sel.as_str())
                            .unwrap_or_else(|e| panic!("invalid dependency selector {sel}: {e}"));
                        (sel, expr)
                    })
                    .collect();
                self.started = true;
                self.boot(&mut out);
                // Immediately-due timers (e.g. zero-delay init work).
                self.pump(0, &mut out);
            }
            CheckerMsg::Act { action, version } => {
                debug_assert!(self.started, "Act before Start");
                // Deliberation: the app lived on while the checker decided.
                self.pump(self.config.deliberation_ms, &mut out);
                if version < self.trace_len {
                    // Stale request (Figure 10): ignore; the pending events
                    // in `out` explain why.
                    return out;
                }
                self.perform(&action, &mut out);
                if let Some(t) = action.timeout_ms {
                    // §3.2: after a timed action, wait for an event or the
                    // timeout before handing control back.
                    self.wait_for_event_or_timeout(t, &mut out);
                }
            }
            CheckerMsg::Wait { time_ms, version } => {
                debug_assert!(self.started, "Wait before Start");
                self.pump(self.config.deliberation_ms, &mut out);
                if version < self.trace_len {
                    return out;
                }
                self.wait_for_event_or_timeout(time_ms, &mut out);
            }
            CheckerMsg::End => {}
        }
        out
    }
}

#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}

    /// The parallel check runtime constructs executors on worker threads;
    /// this pins the `Send` guarantee at compile time for a concrete app.
    #[test]
    fn web_executor_is_send_for_send_apps() {
        #[derive(Debug)]
        struct Nop;
        impl App for Nop {
            fn start(&mut self, _: &mut AppCtx<'_>) {}
            fn view(&self) -> webdom::El {
                webdom::El::new("div")
            }
            fn on_event(&mut self, _: &str, _: &Payload, _: &mut AppCtx<'_>) {}
            fn on_timer(&mut self, _: &str, _: &mut AppCtx<'_>) {}
        }
        assert_send::<WebExecutor<Nop>>();
    }
}
