//! Behavioural tests for the web executor: Acted/Event/Timeout semantics,
//! the Figure 10 staleness race, action-timeout waits, and `reload!`.

use quickstrom_executor::{WebExecutor, WebExecutorConfig};
use quickstrom_protocol::{
    ActionInstance, ActionKind, CheckerMsg, Executor, ExecutorMsg, Key, Selector, StateSnapshot,
    StateUpdate,
};
use webdom::{App, AppCtx, El, EventKind, Payload};

/// Reconstructs the states carried by a batch of replies, delta-aware —
/// exactly what a remote checker does with the update stream.
fn absorb(last: &mut Option<StateSnapshot>, msgs: &[ExecutorMsg]) -> Vec<StateSnapshot> {
    msgs.iter()
        .map(|m| {
            let s = m
                .update()
                .resolve(last.as_ref())
                .expect("resolvable update");
            *last = Some(s.clone());
            s
        })
        .collect()
}

/// An app with a counter button and an async "echo" area updated by a 0ms
/// timer after each click — enough to exercise Acted, changed? events,
/// staleness and timeouts.
#[derive(Default)]
struct Echoing {
    count: u32,
    echo: u32,
    blink: bool,
}

impl App for Echoing {
    fn start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.clock.set_interval("blink", 500);
    }

    fn view(&self) -> El {
        El::new("div").children([
            El::new("button")
                .id("inc")
                .text("+")
                .on(EventKind::Click, "inc"),
            El::new("span").id("count").text(self.count.to_string()),
            El::new("span").id("echo").text(self.echo.to_string()),
            El::new("span")
                .id("blink")
                .text(if self.blink { "on" } else { "off" }),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, ctx: &mut AppCtx<'_>) {
        if msg == "inc" {
            self.count += 1;
            // Echo asynchronously, like a debounced render.
            ctx.clock.set_timeout("echo", 0);
        }
    }

    fn on_timer(&mut self, tag: &str, _ctx: &mut AppCtx<'_>) {
        match tag {
            "echo" => self.echo = self.count,
            "blink" => self.blink = !self.blink,
            _ => {}
        }
    }
}

fn exec() -> WebExecutor<Echoing> {
    WebExecutor::new(Echoing::default)
}

fn start_deps(e: &mut WebExecutor<Echoing>, deps: &[&str]) -> Vec<ExecutorMsg> {
    e.send(CheckerMsg::Start {
        dependencies: deps.iter().map(|s| Selector::new(*s)).collect(),
    })
}

fn click_inc(version: u64) -> CheckerMsg {
    CheckerMsg::Act {
        action: ActionInstance::targeted("inc!", ActionKind::Click, "#inc", 0),
        version,
    }
}

#[test]
fn start_reports_loaded() {
    let mut e = exec();
    let replies = start_deps(&mut e, &["#count", "#echo"]);
    assert_eq!(replies.len(), 1);
    match &replies[0] {
        ExecutorMsg::Event { event, state, .. } => {
            assert_eq!(event, "loaded?");
            let full = state.full().expect("initial state is full");
            assert_eq!(full.first(&"#count".into()).unwrap().text, "0");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn acting_updates_state() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#count"]));
    let replies = e.send(click_inc(1));
    assert_eq!(replies.len(), 1);
    assert!(replies[0].is_acted());
    let states = absorb(&mut last, &replies);
    assert_eq!(states[0].first(&"#count".into()).unwrap().text, "1");
}

#[test]
fn async_echo_surfaces_as_changed_event_and_stales_the_next_act() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#count", "#echo"]));
    // Click: count=1, a 0ms echo timer is scheduled.
    let r1 = e.send(click_inc(1));
    assert_eq!(r1.len(), 1, "echo not yet fired: {r1:?}");
    absorb(&mut last, &r1);
    // The checker decides its next action based on trace length 2, but
    // during deliberation the echo timer fires → Event, version stale.
    let r2 = e.send(click_inc(2));
    assert_eq!(r2.len(), 1);
    match &r2[0] {
        ExecutorMsg::Event { event, detail, .. } => {
            assert_eq!(event, "changed?");
            assert_eq!(detail, &vec![Selector::new("#echo")]);
        }
        other => panic!("unexpected {other:?}"),
    }
    let states = absorb(&mut last, &r2);
    assert_eq!(states[0].first(&"#echo".into()).unwrap().text, "1");
    // Retry with the updated version: accepted.
    let r3 = e.send(click_inc(3));
    assert!(r3.iter().any(ExecutorMsg::is_acted));
}

#[test]
fn wait_returns_event_when_app_changes() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#blink"]));
    // The blink interval fires at 500ms; a 1000ms wait is interrupted.
    let replies = e.send(CheckerMsg::Wait {
        time_ms: 1000,
        version: 1,
    });
    assert_eq!(replies.len(), 1);
    assert!(matches!(&replies[0], ExecutorMsg::Event { event, .. } if event == "changed?"));
    let states = absorb(&mut last, &replies);
    assert_eq!(states[0].first(&"#blink".into()).unwrap().text, "on");
    assert!(e.now_ms() <= 501);
}

#[test]
fn wait_times_out_without_observable_change() {
    let mut e = exec();
    // Only #count instrumented: blinking is invisible to the checker.
    start_deps(&mut e, &["#count"]);
    let replies = e.send(CheckerMsg::Wait {
        time_ms: 300,
        version: 1,
    });
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], ExecutorMsg::Timeout { .. }));
    assert!(e.now_ms() >= 300);
}

#[test]
fn act_with_timeout_waits_for_event() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#count", "#echo"]));
    let action = ActionInstance::targeted("inc!", ActionKind::Click, "#inc", 0).with_timeout(100);
    let replies = e.send(CheckerMsg::Act { action, version: 1 });
    // Acted (count=1) then the echo event (echo=1).
    assert_eq!(replies.len(), 2);
    assert!(replies[0].is_acted());
    assert!(matches!(&replies[1], ExecutorMsg::Event { .. }));
    let states = absorb(&mut last, &replies);
    assert_eq!(states[1].first(&"#echo".into()).unwrap().text, "1");
}

#[test]
fn actions_on_missing_targets_are_noops() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#count"]));
    let action = ActionInstance::targeted("ghost!", ActionKind::Click, "#ghost", 0);
    let replies = e.send(CheckerMsg::Act { action, version: 1 });
    assert!(replies[0].is_acted());
    let states = absorb(&mut last, &replies);
    assert_eq!(states[0].first(&"#count".into()).unwrap().text, "0");
}

#[test]
fn clicks_on_disabled_targets_are_noops() {
    #[derive(Default)]
    struct Disabled;
    impl App for Disabled {
        fn start(&mut self, _ctx: &mut AppCtx<'_>) {}
        fn view(&self) -> El {
            El::new("div").child(
                El::new("button")
                    .id("b")
                    .disabled(true)
                    .on(EventKind::Click, "boom"),
            )
        }
        fn on_event(&mut self, _m: &str, _p: &Payload, _c: &mut AppCtx<'_>) {
            panic!("a disabled button must not receive clicks");
        }
        fn on_timer(&mut self, _t: &str, _c: &mut AppCtx<'_>) {}
    }
    let mut e = WebExecutor::new(|| Disabled);
    e.send(CheckerMsg::Start {
        dependencies: vec![Selector::new("#b")],
    });
    let r = e.send(CheckerMsg::Act {
        action: ActionInstance::targeted("click!", ActionKind::Click, "#b", 0),
        version: 1,
    });
    assert!(r[0].is_acted());
}

#[test]
fn input_and_keypress_route_payloads() {
    /// Records the last payload seen.
    #[derive(Default)]
    struct Form {
        value: String,
        submitted: bool,
    }
    impl App for Form {
        fn start(&mut self, _ctx: &mut AppCtx<'_>) {}
        fn view(&self) -> El {
            El::new("form").children([
                El::new("input")
                    .id("field")
                    .value(self.value.clone())
                    .on(EventKind::Input, "set")
                    .on(EventKind::KeyDown, "key"),
                El::new("p")
                    .id("status")
                    .text(if self.submitted { "sent" } else { "draft" }),
            ])
        }
        fn on_event(&mut self, msg: &str, payload: &Payload, _ctx: &mut AppCtx<'_>) {
            match msg {
                "set" => self.value = payload.text().to_owned(),
                "key" if payload.key() == "Enter" => self.submitted = true,
                _ => {}
            }
        }
        fn on_timer(&mut self, _tag: &str, _ctx: &mut AppCtx<'_>) {}
    }

    let mut e = WebExecutor::new(Form::default);
    let mut last = None;
    absorb(
        &mut last,
        &e.send(CheckerMsg::Start {
            dependencies: vec![Selector::new("#field"), Selector::new("#status")],
        }),
    );
    let r = e.send(CheckerMsg::Act {
        action: ActionInstance::targeted(
            "type!",
            ActionKind::Input(Some("hello".into())),
            "#field",
            0,
        ),
        version: 1,
    });
    let states = absorb(&mut last, &r);
    assert_eq!(states[0].first(&"#field".into()).unwrap().value, "hello");
    let r2 = e.send(CheckerMsg::Act {
        action: ActionInstance::targeted("submit!", ActionKind::KeyPress(Key::Enter), "#field", 0),
        version: 2,
    });
    let states = absorb(&mut last, &r2);
    assert_eq!(states[0].first(&"#status".into()).unwrap().text, "sent");
}

#[test]
fn reload_preserves_storage_but_resets_the_app() {
    /// Persists its counter.
    #[derive(Default)]
    struct Persisting {
        count: u32,
        loaded_from_storage: bool,
    }
    impl App for Persisting {
        fn start(&mut self, ctx: &mut AppCtx<'_>) {
            if let Some(saved) = ctx.storage.get("count") {
                self.count = saved.parse().unwrap_or(0);
                self.loaded_from_storage = true;
            }
        }
        fn view(&self) -> El {
            El::new("div").children([
                El::new("button").id("inc").on(EventKind::Click, "inc"),
                El::new("span").id("count").text(self.count.to_string()),
                El::new("span")
                    .id("from-storage")
                    .text(if self.loaded_from_storage {
                        "yes"
                    } else {
                        "no"
                    }),
            ])
        }
        fn on_event(&mut self, msg: &str, _p: &Payload, ctx: &mut AppCtx<'_>) {
            if msg == "inc" {
                self.count += 1;
                ctx.storage.set("count", self.count.to_string());
            }
        }
        fn on_timer(&mut self, _tag: &str, _ctx: &mut AppCtx<'_>) {}
    }

    let mut e = WebExecutor::new(Persisting::default);
    let mut last = None;
    absorb(
        &mut last,
        &e.send(CheckerMsg::Start {
            dependencies: vec![Selector::new("#count"), Selector::new("#from-storage")],
        }),
    );
    absorb(
        &mut last,
        &e.send(CheckerMsg::Act {
            action: ActionInstance::targeted("inc!", ActionKind::Click, "#inc", 0),
            version: 1,
        }),
    );
    let r = e.send(CheckerMsg::Act {
        action: ActionInstance::untargeted("reload!", ActionKind::Reload),
        version: 2,
    });
    let states = absorb(&mut last, &r);
    assert_eq!(states[0].first(&"#count".into()).unwrap().text, "1");
    assert_eq!(
        states[0].first(&"#from-storage".into()).unwrap().text,
        "yes"
    );
}

#[test]
fn deltas_ship_only_changed_selectors_and_stats_account_for_it() {
    let mut e = exec();
    let mut last = None;
    let r0 = start_deps(&mut e, &["#blink", "#count", "#echo"]);
    assert!(!r0[0].update().is_delta(), "first state must be full");
    absorb(&mut last, &r0);
    // A click changes #count only; the delta must touch exactly it.
    let r1 = e.send(click_inc(1));
    match r1[0].update() {
        StateUpdate::Delta(d) => {
            assert_eq!(d.state_version, 2);
            assert_eq!(d.changed_selectors(), vec![Selector::new("#count")]);
        }
        other => panic!("expected a delta, got {other:?}"),
    }
    absorb(&mut last, &r1);
    let stats = e.transport_stats();
    assert_eq!(stats.states, 2);
    assert_eq!(stats.full_states, 1);
    assert_eq!(stats.delta_states, 1);
    assert_eq!(stats.changed_selectors, 3 + 1);
    assert!(
        stats.shipped_bytes < stats.full_bytes,
        "the delta must be cheaper than two full snapshots: {stats:?}"
    );
}

#[test]
fn full_snapshot_mode_produces_identical_states() {
    let script: Vec<CheckerMsg> = vec![
        click_inc(1),
        click_inc(2),
        click_inc(3),
        CheckerMsg::Wait {
            time_ms: 600,
            version: 4,
        },
    ];
    let drive = |config: WebExecutorConfig| -> Vec<StateSnapshot> {
        let mut e = WebExecutor::with_config(Echoing::default, config);
        let mut last = None;
        let mut states = absorb(
            &mut last,
            &start_deps(&mut e, &["#blink", "#count", "#echo"]),
        );
        for msg in &script {
            states.extend(absorb(&mut last, &e.send(msg.clone())));
        }
        states
    };
    let delta_states = drive(WebExecutorConfig::default());
    let full_states = drive(WebExecutorConfig::full_snapshots());
    assert_eq!(delta_states, full_states);
    assert!(delta_states.len() > 3);
}

/// A second `Start` opens a new session: the first state is a full
/// snapshot again (a delta against the old session's base — possibly
/// over different selectors — would be rejected by a fresh checker),
/// versions restart, and transport stats count the new session only.
#[test]
fn restarting_a_session_sends_a_full_snapshot_again() {
    let mut e = exec();
    let mut last = None;
    absorb(&mut last, &start_deps(&mut e, &["#count", "#echo"]));
    absorb(&mut last, &e.send(click_inc(1)));
    assert_eq!(e.transport_stats().delta_states, 1);

    // New session, different dependency list.
    let r = start_deps(&mut e, &["#blink", "#count"]);
    assert!(
        !r[0].update().is_delta(),
        "session restart must resend full"
    );
    let mut fresh = None;
    let states = absorb(&mut fresh, &r);
    assert_eq!(states[0].first(&"#count".into()).unwrap().text, "1");
    assert!(states[0].queries.contains_key(&Selector::new("#blink")));
    let stats = e.transport_stats();
    assert_eq!((stats.full_states, stats.delta_states), (1, 0));

    // Versions restart from the new session's trace: version 1 is fresh.
    let r2 = e.send(click_inc(1));
    assert!(r2.iter().any(ExecutorMsg::is_acted));
}
