//! The structural operational semantics of CCS.
//!
//! [`transitions`] computes the labelled transition relation `P --a--> P'`:
//!
//! ```text
//! Act:   a.P --a--> P
//! Sum:   P --a--> P'  ⟹  P+Q --a--> P'       (and symmetrically)
//! Par:   P --a--> P'  ⟹  P|Q --a--> P'|Q     (and symmetrically)
//! Com:   P --a--> P', Q --'a--> Q'  ⟹  P|Q --τ--> P'|Q'
//! Res:   P --a--> P', a ∉ L ∪ 'L  ⟹  P\L --a--> P'\L
//! Rel:   P --a--> P'  ⟹  P[f] --f(a)--> P'[f]
//! Con:   A ≝ P, P --a--> P'  ⟹  A --a--> P'
//! ```

use crate::syntax::{Action, Definitions, Process};

/// How deep constant unfolding may recurse before we conclude the
/// definition is unguarded (e.g. `X = X + a.0`).
const MAX_UNFOLD_DEPTH: usize = 64;

/// Errors from the transition relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticsError {
    /// A process constant has no definition.
    Undefined(String),
    /// Constant unfolding did not reach an action prefix (unguarded
    /// recursion like `X = X`).
    Unguarded(String),
}

impl std::fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticsError::Undefined(name) => write!(f, "undefined process constant {name}"),
            SemanticsError::Unguarded(name) => {
                write!(f, "unguarded recursion while unfolding {name}")
            }
        }
    }
}

impl std::error::Error for SemanticsError {}

/// All transitions of `p` under `defs`, in deterministic (structural)
/// order.
///
/// # Errors
///
/// Returns [`SemanticsError`] for undefined constants and unguarded
/// recursion.
pub fn transitions(
    p: &Process,
    defs: &Definitions,
) -> Result<Vec<(Action, Process)>, SemanticsError> {
    transitions_at(p, defs, 0)
}

fn transitions_at(
    p: &Process,
    defs: &Definitions,
    depth: usize,
) -> Result<Vec<(Action, Process)>, SemanticsError> {
    match p {
        Process::Nil => Ok(Vec::new()),
        Process::Prefix(a, rest) => Ok(vec![(a.clone(), (**rest).clone())]),
        Process::Sum(l, r) => {
            let mut out = transitions_at(l, defs, depth)?;
            out.extend(transitions_at(r, defs, depth)?);
            Ok(out)
        }
        Process::Par(l, r) => {
            let lefts = transitions_at(l, defs, depth)?;
            let rights = transitions_at(r, defs, depth)?;
            let mut out = Vec::new();
            for (a, l2) in &lefts {
                out.push((a.clone(), Process::par(l2.clone(), (**r).clone())));
            }
            for (a, r2) in &rights {
                out.push((a.clone(), Process::par((**l).clone(), r2.clone())));
            }
            // Communication: complementary actions synchronise into τ.
            for (a, l2) in &lefts {
                if let Some(comp) = a.complement() {
                    for (b, r2) in &rights {
                        if *b == comp {
                            out.push((Action::Tau, Process::par(l2.clone(), r2.clone())));
                        }
                    }
                }
            }
            Ok(out)
        }
        Process::Restrict(inner, labels) => {
            let inner_trans = transitions_at(inner, defs, depth)?;
            Ok(inner_trans
                .into_iter()
                .filter(|(a, _)| a.label().is_none_or(|l| !labels.contains(l)))
                .map(|(a, p2)| (a, Process::Restrict(Box::new(p2), labels.clone())))
                .collect())
        }
        Process::Rename(inner, map) => {
            let inner_trans = transitions_at(inner, defs, depth)?;
            Ok(inner_trans
                .into_iter()
                .map(|(a, p2)| {
                    let renamed = match &a {
                        Action::Tau => Action::Tau,
                        Action::In(l) => {
                            Action::In(map.get(l).cloned().unwrap_or_else(|| l.clone()))
                        }
                        Action::Out(l) => {
                            Action::Out(map.get(l).cloned().unwrap_or_else(|| l.clone()))
                        }
                    };
                    (renamed, Process::Rename(Box::new(p2), map.clone()))
                })
                .collect())
        }
        Process::Const(name) => {
            if depth >= MAX_UNFOLD_DEPTH {
                return Err(SemanticsError::Unguarded(name.clone()));
            }
            let body = defs
                .get(name)
                .ok_or_else(|| SemanticsError::Undefined(name.clone()))?;
            transitions_at(body, defs, depth + 1)
        }
    }
}

/// The visible (non-τ) action labels enabled at `p`.
///
/// # Errors
///
/// Propagates [`SemanticsError`] from [`transitions`].
pub fn enabled_labels(p: &Process, defs: &Definitions) -> Result<Vec<Action>, SemanticsError> {
    let mut labels: Vec<Action> = transitions(p, defs)?
        .into_iter()
        .map(|(a, _)| a)
        .filter(|a| *a != Action::Tau)
        .collect();
    labels.sort();
    labels.dedup();
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_definitions, parse_process};

    fn p(src: &str) -> Process {
        parse_process(src).unwrap()
    }

    #[test]
    fn prefix_and_sum() {
        let defs = Definitions::new();
        let t = transitions(&p("a.0 + b.0"), &defs).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, Action::In("a".into()));
        assert_eq!(t[1].0, Action::In("b".into()));
        assert_eq!(t[0].1, Process::Nil);
    }

    #[test]
    fn parallel_interleaving_and_communication() {
        let defs = Definitions::new();
        let t = transitions(&p("'a.0 | a.0"), &defs).unwrap();
        // 'a step, a step, and the τ communication.
        assert_eq!(t.len(), 3);
        assert!(t.iter().any(|(a, _)| *a == Action::Tau));
    }

    #[test]
    fn restriction_forces_synchronisation() {
        let defs = Definitions::new();
        let t = transitions(&p("('a.0 | a.0) \\ {a}"), &defs).unwrap();
        // Only the τ remains.
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, Action::Tau);
    }

    #[test]
    fn renaming_relabels_transitions() {
        let defs = Definitions::new();
        let t = transitions(&p("(a.0)[b/a]"), &defs).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, Action::In("b".into()));
    }

    #[test]
    fn constants_unfold() {
        let (defs, _) = parse_definitions("Clock = tick.Clock;").unwrap();
        let t = transitions(&Process::Const("Clock".into()), &defs).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, Action::In("tick".into()));
        assert_eq!(t[0].1, Process::Const("Clock".into()));
    }

    #[test]
    fn undefined_and_unguarded_constants_error() {
        let defs = Definitions::new();
        assert_eq!(
            transitions(&Process::Const("X".into()), &defs),
            Err(SemanticsError::Undefined("X".into()))
        );
        let (defs2, _) = parse_definitions("X = X;").unwrap();
        assert!(matches!(
            transitions(&Process::Const("X".into()), &defs2),
            Err(SemanticsError::Unguarded(_))
        ));
    }

    #[test]
    fn enabled_labels_hide_tau() {
        let defs = Definitions::new();
        let labels = enabled_labels(&p("('a.0 | a.b.0)"), &defs).unwrap();
        assert_eq!(
            labels,
            vec![Action::In("a".into()), Action::Out("a".into())]
        );
    }

    #[test]
    fn vending_machine_walk() {
        // Milner's classic vending machine.
        let (defs, _) = parse_definitions("Vend = coin.(tea.Vend + coffee.Vend);").unwrap();
        let start = Process::Const("Vend".into());
        let after_coin = &transitions(&start, &defs).unwrap()[0];
        assert_eq!(after_coin.0, Action::In("coin".into()));
        let drinks = enabled_labels(&after_coin.1, &defs).unwrap();
        assert_eq!(
            drinks,
            vec![Action::In("coffee".into()), Action::In("tea".into())]
        );
    }
}
