//! A Quickstrom executor that interprets CCS models (§3.4).
//!
//! "To simplify testing of our Specstrom interpreter we have also
//! implemented another executor, which interprets models written in
//! Milner's Calculus of Communicating Systems." Nothing about the checker
//! is WebDriver-specific, and this executor proves it: the same checker,
//! protocol and specifications drive a process-calculus model instead of a
//! DOM.
//!
//! ## State projection conventions
//!
//! The "UI" of a CCS process is projected through pseudo-selectors:
//!
//! * `#state` — one element whose text is the canonical process term;
//! * `.act-<label>` — one element per *enabled input action* `label`;
//! * `.out-<label>` — one element per *enabled output action* `'label`.
//!
//! Clicking `.act-x`/`.out-x` performs the corresponding transition.
//! Internal activity is modelled by τ-transitions, which the executor
//! performs greedily (deterministically, first-transition-first, up to a
//! bound) after every user action — the weak-transition view of the model.

use crate::semantics::{transitions, SemanticsError};
use crate::syntax::{Action, Definitions, Process};
use quickstrom_protocol::{
    ActionKind, CheckerMsg, ElementState, Executor, ExecutorMsg, Selector, StateSnapshot,
};

/// How many τ-steps are absorbed after each action before we conclude the
/// model τ-diverges.
const MAX_TAU_STEPS: usize = 32;

/// An executor interpreting a CCS model.
#[derive(Debug, Clone)]
pub struct CcsExecutor {
    defs: Definitions,
    initial: Process,
    current: Process,
    dependencies: Vec<Selector>,
    trace_len: u64,
}

impl CcsExecutor {
    /// Creates an executor for the given definitions, starting at `entry`.
    #[must_use]
    pub fn new(defs: Definitions, entry: Process) -> Self {
        CcsExecutor {
            defs,
            current: entry.clone(),
            initial: entry,
            dependencies: Vec::new(),
            trace_len: 0,
        }
    }

    /// The current process term (for tests).
    #[must_use]
    pub fn current(&self) -> &Process {
        &self.current
    }

    fn enabled(&self) -> Result<Vec<(Action, Process)>, SemanticsError> {
        transitions(&self.current, &self.defs)
    }

    /// Absorbs τ-transitions greedily.
    fn stabilise(&mut self) {
        for _ in 0..MAX_TAU_STEPS {
            let Ok(trans) = self.enabled() else { return };
            match trans.into_iter().find(|(a, _)| *a == Action::Tau) {
                Some((_, next)) => self.current = next,
                None => return,
            }
        }
    }

    fn snapshot(&self) -> StateSnapshot {
        let mut snap = StateSnapshot::new();
        let enabled = self.enabled().unwrap_or_default();
        for selector in &self.dependencies {
            let sel = selector.as_str();
            let elements: Vec<ElementState> = if sel == "#state" {
                vec![ElementState::with_text(self.current.to_string())]
            } else if let Some(label) = sel.strip_prefix(".act-") {
                enabled
                    .iter()
                    .filter(|(a, _)| matches!(a, Action::In(l) if l == label))
                    .map(|_| ElementState::with_text(label))
                    .collect()
            } else if let Some(label) = sel.strip_prefix(".out-") {
                enabled
                    .iter()
                    .filter(|(a, _)| matches!(a, Action::Out(l) if l == label))
                    .map(|_| ElementState::with_text(format!("'{label}")))
                    .collect()
            } else {
                Vec::new()
            };
            snap.insert_query(*selector, elements);
        }
        snap
    }

    /// Performs the transition selected by a click on `selector`.
    fn perform(&mut self, selector: &Selector) {
        let sel = selector.as_str();
        let wanted: Option<Action> = sel
            .strip_prefix(".act-")
            .map(|l| Action::In(l.to_owned()))
            .or_else(|| sel.strip_prefix(".out-").map(|l| Action::Out(l.to_owned())));
        let Some(wanted) = wanted else { return };
        let Ok(trans) = self.enabled() else { return };
        if let Some((_, next)) = trans.into_iter().find(|(a, _)| *a == wanted) {
            self.current = next;
            self.stabilise();
        }
        // Clicking a non-enabled pseudo-element is a no-op, like clicking a
        // vanished DOM node.
    }
}

impl Executor for CcsExecutor {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        match msg {
            CheckerMsg::Start { dependencies } => {
                self.dependencies = dependencies;
                self.current = self.initial.clone();
                self.stabilise();
                self.trace_len = 1;
                vec![ExecutorMsg::event("loaded?", Vec::new(), self.snapshot())]
            }
            CheckerMsg::Act { action, version } => {
                if version < self.trace_len {
                    return Vec::new();
                }
                match &action.kind {
                    ActionKind::Click => {
                        if let Some((selector, _)) = &action.target {
                            self.perform(selector);
                        }
                    }
                    ActionKind::Reload => {
                        self.current = self.initial.clone();
                        self.stabilise();
                    }
                    // Only clicks are meaningful against a process algebra.
                    _ => {}
                }
                self.trace_len += 1;
                vec![ExecutorMsg::acted(self.snapshot())]
            }
            CheckerMsg::Wait { version, .. } => {
                if version < self.trace_len {
                    return Vec::new();
                }
                // CCS models have no clock: a wait always times out.
                self.trace_len += 1;
                vec![ExecutorMsg::timeout(self.snapshot())]
            }
            CheckerMsg::End => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_definitions;
    use quickstrom_protocol::ActionInstance;

    fn vending() -> CcsExecutor {
        let (defs, main) = parse_definitions("Vend = coin.(tea.Vend + coffee.Vend);").unwrap();
        CcsExecutor::new(defs, Process::Const(main))
    }

    fn deps() -> Vec<Selector> {
        vec![
            Selector::new("#state"),
            Selector::new(".act-coin"),
            Selector::new(".act-tea"),
            Selector::new(".act-coffee"),
        ]
    }

    fn click(sel: &str, version: u64) -> CheckerMsg {
        CheckerMsg::Act {
            action: ActionInstance::targeted("go!", ActionKind::Click, sel, 0),
            version,
        }
    }

    #[test]
    fn start_projects_enabled_actions() {
        let mut e = vending();
        let r = e.send(CheckerMsg::Start {
            dependencies: deps(),
        });
        let state = r[0].full_state().unwrap();
        assert_eq!(state.matches(&".act-coin".into()).len(), 1);
        assert_eq!(state.matches(&".act-tea".into()).len(), 0);
        assert_eq!(state.first(&"#state".into()).unwrap().text, "Vend");
    }

    #[test]
    fn clicking_performs_transitions() {
        let mut e = vending();
        e.send(CheckerMsg::Start {
            dependencies: deps(),
        });
        let r = e.send(click(".act-coin", 1));
        let state = r[0].full_state().unwrap();
        assert_eq!(state.matches(&".act-coin".into()).len(), 0);
        assert_eq!(state.matches(&".act-tea".into()).len(), 1);
        assert_eq!(state.matches(&".act-coffee".into()).len(), 1);
        let r2 = e.send(click(".act-tea", 2));
        assert_eq!(
            r2[0]
                .full_state()
                .unwrap()
                .matches(&".act-coin".into())
                .len(),
            1
        );
    }

    #[test]
    fn disabled_clicks_are_noops() {
        let mut e = vending();
        e.send(CheckerMsg::Start {
            dependencies: deps(),
        });
        let r = e.send(click(".act-tea", 1));
        assert_eq!(
            r[0].full_state()
                .unwrap()
                .first(&"#state".into())
                .unwrap()
                .text,
            "Vend"
        );
    }

    #[test]
    fn tau_steps_are_absorbed() {
        // (a.'b.0 | b.c.0) \ {b}: after `a`, the b-communication is a τ
        // that fires automatically, enabling `c`.
        let (defs, main) = parse_definitions("Sys = (a.'b.0 | b.c.0) \\ {b};").unwrap();
        let mut e = CcsExecutor::new(defs, Process::Const(main));
        e.send(CheckerMsg::Start {
            dependencies: vec![Selector::new(".act-a"), Selector::new(".act-c")],
        });
        let r = e.send(click(".act-a", 1));
        assert_eq!(
            r[0].full_state().unwrap().matches(&".act-c".into()).len(),
            1
        );
    }

    #[test]
    fn stale_acts_are_ignored_and_waits_time_out() {
        let mut e = vending();
        e.send(CheckerMsg::Start {
            dependencies: deps(),
        });
        assert!(e.send(click(".act-coin", 0)).is_empty());
        let r = e.send(CheckerMsg::Wait {
            time_ms: 100,
            version: 1,
        });
        assert!(matches!(r[0], ExecutorMsg::Timeout { .. }));
    }

    #[test]
    fn reload_returns_to_the_initial_process() {
        let mut e = vending();
        e.send(CheckerMsg::Start {
            dependencies: deps(),
        });
        e.send(click(".act-coin", 1));
        let r = e.send(CheckerMsg::Act {
            action: ActionInstance::untargeted("reload!", ActionKind::Reload),
            version: 2,
        });
        assert_eq!(
            r[0].full_state()
                .unwrap()
                .first(&"#state".into())
                .unwrap()
                .text,
            "Vend"
        );
    }
}
