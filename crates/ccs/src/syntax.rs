//! Terms of Milner's Calculus of Communicating Systems.
//!
//! The grammar covers the classic constructs: the inert process `0`, action
//! prefix `a.P` (with co-actions written `'a` and the silent action `tau`),
//! choice `P + Q`, parallel composition `P | Q`, restriction `P \ {a, b}`,
//! relabelling `P[b/a]`, and named process constants bound by recursive
//! definitions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A CCS action: an input label, an output (co-)label, or the silent τ.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// The silent action τ (internal activity, e.g. a communication).
    Tau,
    /// An input action `a`.
    In(String),
    /// An output action `'a`.
    Out(String),
}

impl Action {
    /// The complementary action (`a` ↔ `'a`); τ has no complement.
    #[must_use]
    pub fn complement(&self) -> Option<Action> {
        match self {
            Action::Tau => None,
            Action::In(l) => Some(Action::Out(l.clone())),
            Action::Out(l) => Some(Action::In(l.clone())),
        }
    }

    /// The underlying channel label, if any.
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        match self {
            Action::Tau => None,
            Action::In(l) | Action::Out(l) => Some(l),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Tau => f.write_str("tau"),
            Action::In(l) => f.write_str(l),
            Action::Out(l) => write!(f, "'{l}"),
        }
    }
}

/// A CCS process term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process {
    /// The inert process `0`.
    Nil,
    /// Action prefix `a.P`.
    Prefix(Action, Box<Process>),
    /// Choice `P + Q`.
    Sum(Box<Process>, Box<Process>),
    /// Parallel composition `P | Q`.
    Par(Box<Process>, Box<Process>),
    /// Restriction `P \ {a, …}`: the listed channels are internalised.
    Restrict(Box<Process>, BTreeSet<String>),
    /// Relabelling `P[b/a, …]`: channel `a` is renamed to `b`.
    Rename(Box<Process>, BTreeMap<String, String>),
    /// A named process constant, resolved in a [`Definitions`] environment.
    Const(String),
}

impl Process {
    /// Action prefix helper.
    #[must_use]
    pub fn prefix(action: Action, then: Process) -> Process {
        Process::Prefix(action, Box::new(then))
    }

    /// Choice helper.
    #[must_use]
    pub fn sum(l: Process, r: Process) -> Process {
        Process::Sum(Box::new(l), Box::new(r))
    }

    /// Parallel composition helper.
    #[must_use]
    pub fn par(l: Process, r: Process) -> Process {
        Process::Par(Box::new(l), Box::new(r))
    }
}

fn prec(p: &Process) -> u8 {
    match p {
        Process::Nil | Process::Const(_) => 4,
        Process::Prefix(_, _) => 3,
        Process::Restrict(_, _) | Process::Rename(_, _) => 3,
        Process::Par(_, _) => 2,
        Process::Sum(_, _) => 1,
    }
}

fn fmt_at(p: &Process, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let this = prec(p);
    if this < min {
        write!(f, "(")?;
    }
    match p {
        Process::Nil => write!(f, "0")?,
        Process::Const(name) => write!(f, "{name}")?,
        Process::Prefix(a, rest) => {
            write!(f, "{a}.")?;
            // Prefix chains right-associate; restriction/relabelling bind
            // tighter than prefix, so both print without parentheses.
            fmt_at(rest, 3, f)?;
        }
        Process::Sum(l, r) => {
            fmt_at(l, 1, f)?;
            write!(f, " + ")?;
            fmt_at(r, 2, f)?;
        }
        Process::Par(l, r) => {
            fmt_at(l, 2, f)?;
            write!(f, " | ")?;
            fmt_at(r, 3, f)?;
        }
        Process::Restrict(inner, labels) => {
            fmt_at(inner, 4, f)?;
            write!(f, " \\ {{")?;
            for (i, l) in labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, "}}")?;
        }
        Process::Rename(inner, map) => {
            fmt_at(inner, 4, f)?;
            write!(f, "[")?;
            for (i, (from, to)) in map.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{to}/{from}")?;
            }
            write!(f, "]")?;
        }
    }
    if this < min {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_at(self, 0, f)
    }
}

/// Recursive process definitions: `X = a.X;`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Definitions {
    defs: BTreeMap<String, Process>,
}

impl Definitions {
    /// An empty environment.
    #[must_use]
    pub fn new() -> Self {
        Definitions::default()
    }

    /// Adds (or replaces) a definition.
    pub fn define(&mut self, name: impl Into<String>, body: Process) {
        self.defs.insert(name.into(), body);
    }

    /// Looks a constant up.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Process> {
        self.defs.get(name)
    }

    /// The number of definitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when no definitions exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_complements() {
        assert_eq!(
            Action::In("a".into()).complement(),
            Some(Action::Out("a".into()))
        );
        assert_eq!(
            Action::Out("a".into()).complement(),
            Some(Action::In("a".into()))
        );
        assert_eq!(Action::Tau.complement(), None);
        assert_eq!(Action::In("x".into()).label(), Some("x"));
        assert_eq!(Action::Tau.label(), None);
    }

    #[test]
    fn display_respects_precedence() {
        // a.(b.0 + c.0)
        let p = Process::prefix(
            Action::In("a".into()),
            Process::sum(
                Process::prefix(Action::In("b".into()), Process::Nil),
                Process::prefix(Action::In("c".into()), Process::Nil),
            ),
        );
        assert_eq!(p.to_string(), "a.(b.0 + c.0)");
        let q = Process::par(
            Process::prefix(Action::Out("a".into()), Process::Nil),
            Process::prefix(Action::In("a".into()), Process::Nil),
        );
        assert_eq!(q.to_string(), "'a.0 | a.0");
    }

    #[test]
    fn display_restriction_and_renaming() {
        let mut labels = BTreeSet::new();
        labels.insert("a".to_owned());
        let p = Process::Restrict(Box::new(Process::Const("X".into())), labels);
        assert_eq!(p.to_string(), "X \\ {a}");
        let mut map = BTreeMap::new();
        map.insert("a".to_owned(), "b".to_owned());
        let q = Process::Rename(Box::new(Process::Const("X".into())), map);
        assert_eq!(q.to_string(), "X[b/a]");
    }

    #[test]
    fn definitions_roundtrip() {
        let mut defs = Definitions::new();
        assert!(defs.is_empty());
        defs.define(
            "Clock",
            Process::prefix(Action::Out("tick".into()), Process::Const("Clock".into())),
        );
        assert_eq!(defs.len(), 1);
        assert_eq!(defs.get("Clock").unwrap().to_string(), "'tick.Clock");
        assert!(defs.get("Nope").is_none());
    }
}
