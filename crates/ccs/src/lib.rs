//! # ccs
//!
//! Milner's Calculus of Communicating Systems: terms, a parser, the
//! structural operational semantics, and a Quickstrom [`CcsExecutor`]
//! (paper §3.4 — "another executor, which interprets models written in
//! Milner's Calculus of Communicating Systems").
//!
//! ## Example
//!
//! ```
//! use ccs::{parse_definitions, transitions, Process};
//!
//! let (defs, main) = parse_definitions(
//!     "Vend = coin.(tea.Vend + coffee.Vend);",
//! )
//! .unwrap();
//! let start = Process::Const(main);
//! let steps = transitions(&start, &defs).unwrap();
//! assert_eq!(steps.len(), 1); // only `coin` is enabled
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod parser;
pub mod semantics;
pub mod syntax;

pub use executor::CcsExecutor;
pub use parser::{parse_definitions, parse_process, ParseCcsError};
pub use semantics::{enabled_labels, transitions, SemanticsError};
pub use syntax::{Action, Definitions, Process};
