//! A parser for CCS terms and definition files.
//!
//! Grammar:
//!
//! ```text
//! file    := (def)*
//! def     := NAME '=' sum ';'
//! sum     := par ('+' par)*
//! par     := post ('|' post)*
//! post    := prim ('\' '{' labels '}' | '[' renames ']')*
//! prim    := '0' | action '.' post | NAME | '(' sum ')'
//! action  := 'tau' | label | '\'' label
//! label   := lowercase ident        NAME := Uppercase ident
//! renames := label '/' label (',' label '/' label)*
//! ```
//!
//! Identifiers starting with an uppercase letter are process constants;
//! lowercase identifiers are channel labels. `'a` is the output co-action.

use crate::syntax::{Action, Definitions, Process};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A CCS parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCcsError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseCcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CCS parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseCcsError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseCcsError {
        ParseCcsError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.src.as_bytes();
        loop {
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments.
            if self.src[self.pos..].starts_with("//") {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseCcsError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseCcsError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len()
            && ((bytes[self.pos] as char).is_ascii_alphanumeric() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.error("expected an identifier"))
        } else {
            Ok(self.src[start..self.pos].to_owned())
        }
    }

    fn sum(&mut self) -> Result<Process, ParseCcsError> {
        let mut out = self.par()?;
        while self.peek() == Some('+') {
            self.pos += 1;
            let rhs = self.par()?;
            out = Process::sum(out, rhs);
        }
        Ok(out)
    }

    fn par(&mut self) -> Result<Process, ParseCcsError> {
        let mut out = self.post()?;
        while self.peek() == Some('|') {
            self.pos += 1;
            let rhs = self.post()?;
            out = Process::par(out, rhs);
        }
        Ok(out)
    }

    fn post(&mut self) -> Result<Process, ParseCcsError> {
        let mut out = self.prim()?;
        loop {
            match self.peek() {
                Some('\\') => {
                    self.pos += 1;
                    self.expect('{')?;
                    let mut labels = BTreeSet::new();
                    loop {
                        labels.insert(self.ident()?);
                        if !self.eat(',') {
                            break;
                        }
                    }
                    self.expect('}')?;
                    out = Process::Restrict(Box::new(out), labels);
                }
                Some('[') => {
                    self.pos += 1;
                    let mut map = BTreeMap::new();
                    loop {
                        let to = self.ident()?;
                        self.expect('/')?;
                        let from = self.ident()?;
                        map.insert(from, to);
                        if !self.eat(',') {
                            break;
                        }
                    }
                    self.expect(']')?;
                    out = Process::Rename(Box::new(out), map);
                }
                _ => break,
            }
        }
        Ok(out)
    }

    fn prim(&mut self) -> Result<Process, ParseCcsError> {
        match self.peek() {
            Some('0') => {
                self.pos += 1;
                Ok(Process::Nil)
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.sum()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some('\'') => {
                self.pos += 1;
                let label = self.ident()?;
                self.expect('.')?;
                let rest = self.post()?;
                Ok(Process::prefix(Action::Out(label), rest))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let word = self.ident()?;
                if word == "tau" {
                    self.expect('.')?;
                    let rest = self.post()?;
                    Ok(Process::prefix(Action::Tau, rest))
                } else if word.chars().next().is_some_and(char::is_uppercase) {
                    Ok(Process::Const(word))
                } else {
                    self.expect('.')?;
                    let rest = self.post()?;
                    Ok(Process::prefix(Action::In(word), rest))
                }
            }
            _ => Err(self.error("expected a process")),
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }
}

/// Parses a single process term.
///
/// # Errors
///
/// Returns [`ParseCcsError`] on malformed input or trailing characters.
///
/// # Examples
///
/// ```
/// use ccs::parse_process;
/// let p = parse_process("coin.(tea.0 + coffee.0)").unwrap();
/// assert_eq!(p.to_string(), "coin.(tea.0 + coffee.0)");
/// ```
pub fn parse_process(src: &str) -> Result<Process, ParseCcsError> {
    let mut parser = Parser { src, pos: 0 };
    let p = parser.sum()?;
    if !parser.at_end() {
        return Err(parser.error("trailing input after process"));
    }
    Ok(p)
}

/// Parses a definition file; returns the definitions and the name of the
/// first-defined process (the conventional entry point).
///
/// # Errors
///
/// Returns [`ParseCcsError`] on malformed definitions or an empty file.
///
/// # Examples
///
/// ```
/// use ccs::parse_definitions;
/// let (defs, main) = parse_definitions(
///     "Vend = coin.Serve;\n\
///      Serve = tea.Vend + coffee.Vend;",
/// )
/// .unwrap();
/// assert_eq!(main, "Vend");
/// assert_eq!(defs.len(), 2);
/// ```
pub fn parse_definitions(src: &str) -> Result<(Definitions, String), ParseCcsError> {
    let mut parser = Parser { src, pos: 0 };
    let mut defs = Definitions::new();
    let mut first = None;
    while !parser.at_end() {
        let name = parser.ident()?;
        if !name.chars().next().is_some_and(char::is_uppercase) {
            return Err(parser.error(format!("process constants start uppercase, got {name}")));
        }
        parser.expect('=')?;
        let body = parser.sum()?;
        parser.expect(';')?;
        if first.is_none() {
            first = Some(name.clone());
        }
        defs.define(name, body);
    }
    let main = first.ok_or_else(|| parser.error("no definitions in file"))?;
    Ok((defs, main))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display() {
        for src in [
            "0",
            "a.0",
            "'a.0",
            "tau.0",
            "a.0 + b.0",
            "a.0 | b.0",
            "a.(b.0 + c.0)",
            "(a.0 | 'a.0) \\ {a}",
            "a.0[b/a]",
            "Vend",
        ] {
            let p = parse_process(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(p.to_string(), src);
        }
    }

    #[test]
    fn precedence_sum_binds_loosest() {
        let p = parse_process("a.0 + b.0 | c.0").unwrap();
        // a.0 + (b.0 | c.0)
        assert!(matches!(p, Process::Sum(_, _)));
    }

    #[test]
    fn prefix_chains() {
        let p = parse_process("coin.tea.0").unwrap();
        assert_eq!(p.to_string(), "coin.tea.0");
    }

    #[test]
    fn definitions_with_comments() {
        let (defs, main) =
            parse_definitions("// the classic machine\nVend = coin.(tea.Vend + coffee.Vend);")
                .unwrap();
        assert_eq!(main, "Vend");
        assert!(defs.get("Vend").is_some());
    }

    #[test]
    fn errors() {
        assert!(parse_process("a.").is_err());
        assert!(parse_process("a.0 extra").is_err());
        assert!(parse_process("(a.0").is_err());
        assert!(parse_definitions("lower = a.0;").is_err());
        assert!(parse_definitions("").is_err());
        assert!(parse_process("a.0 \\ {}").is_err());
    }
}
