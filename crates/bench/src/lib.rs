//! # quickstrom-bench
//!
//! Shared machinery for the evaluation harness (`evalharness` binary) and
//! the Criterion benchmarks: running the TodoMVC registry sweep (Tables 1
//! and 2), the subscript sweep (Figure 13), and the ablations of
//! DESIGN.md.
//!
//! The registry sweep is the project's hottest end-to-end path, and it
//! parallelises at entry granularity: [`sweep_registry_jobs`] fans the 43
//! implementations out over the checker's worker pool
//! ([`pool`]). Verdicts and state counts are
//! byte-identical for every job count — only wall-clock time changes —
//! because each entry's check is self-contained and seeded independently.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry::{Entry, REGISTRY};
use quickstrom::quickstrom_checker::pool;
use quickstrom::quickstrom_obs::metrics::{SEND_LATENCY, STEP_LATENCY};
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How executors ship states over the checker protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Incremental: one full snapshot, then `SnapshotDelta`s (the
    /// default pipeline).
    #[default]
    Delta,
    /// Every message carries a complete snapshot (the pre-incremental
    /// protocol, kept for differential comparison).
    Full,
}

impl SnapshotMode {
    /// The executor configuration for this mode.
    #[must_use]
    pub fn config(self) -> WebExecutorConfig {
        match self {
            SnapshotMode::Delta => WebExecutorConfig::default(),
            SnapshotMode::Full => WebExecutorConfig::full_snapshots(),
        }
    }
}

/// The bundled TodoMVC specification, compiled once per process and shared
/// (`Arc`) across sweep entries, worker threads, and Criterion iterations —
/// benches and sweeps measure *checking*, not parsing. The one-off compile
/// cost is recorded so the harness can still report it
/// ([`todomvc_spec_compile_s`]).
static TODOMVC_SPEC: OnceLock<(Arc<CompiledSpec>, f64)> = OnceLock::new();

fn todomvc_spec_entry() -> &'static (Arc<CompiledSpec>, f64) {
    TODOMVC_SPEC.get_or_init(|| {
        let started = Instant::now();
        let spec =
            quickstrom::specstrom::load(quickstrom::specs::TODOMVC).expect("bundled spec compiles");
        (Arc::new(spec), started.elapsed().as_secs_f64())
    })
}

/// The shared, once-compiled TodoMVC specification.
#[must_use]
pub fn todomvc_spec() -> Arc<CompiledSpec> {
    Arc::clone(&todomvc_spec_entry().0)
}

/// Wall-clock seconds the one-off TodoMVC spec compile took (the
/// sweep-level "spec compile" phase; per-entry timings cover the executor
/// and formula-evaluation phases).
#[must_use]
pub fn todomvc_spec_compile_s() -> f64 {
    todomvc_spec_entry().1
}

/// The result of checking one registry implementation.
#[derive(Debug, Clone)]
pub struct ImplResult {
    /// Implementation name.
    pub name: &'static str,
    /// Did the whole check pass?
    pub passed: bool,
    /// Table 1's expectation.
    pub expected_to_fail: bool,
    /// Wall-clock seconds spent checking.
    pub wall_s: f64,
    /// Of `wall_s`: seconds inside `Executor::send` (driving the app).
    pub executor_s: f64,
    /// Of `wall_s`: seconds in formula evaluation/progression and guards.
    pub eval_s: f64,
    /// Atom expansions the evaluator requested across all runs.
    pub atoms_total: u64,
    /// Of `atoms_total`: expansions actually re-evaluated (the rest were
    /// served from the value-keyed expansion memo or the footprint cache
    /// — see `CheckOptions::atom_cache`).
    pub atoms_reevaluated: u64,
    /// Value-mode memo lookups served without re-evaluation (zero outside
    /// `AtomCacheMode::Value`).
    pub atom_memo_hits: u64,
    /// Value-mode memo lookups that had to expand the atom.
    pub atom_memo_misses: u64,
    /// Memo entries evicted by the capacity bound.
    pub atom_memo_evictions: u64,
    /// Residual formulae interned by the property evaluation automata at
    /// the end of the check (zero in `EvalMode::Stepper` mode). The
    /// transition table is owned by the compiled spec and shared across
    /// entries, so this reports the table size *as of* this entry, not a
    /// per-entry increment.
    pub ltl_states: u64,
    /// Formula-progression steps answered by a transition-table lookup
    /// instead of unroll+simplify (zero in `EvalMode::Stepper` mode).
    pub ltl_table_hits: u64,
    /// Of those, steps answered wholesale by the state-value step memo
    /// (no atom expansion or observation at all; zero under
    /// `--step-memo off`).
    pub step_memo_hits: u64,
    /// The speculation bound of the pipelined runtime (zero under
    /// `--pipeline off`). Note that under pipelining `executor_s` and
    /// `eval_s` overlap in wall time and no longer sum to `wall_s`.
    pub pipeline_depth: u64,
    /// Seconds the pipelined driver was blocked on the evaluator (full
    /// state channel, or parked at a budget boundary).
    pub executor_stall_s: f64,
    /// Seconds the pipelined evaluator starved on an empty state channel
    /// (the executor was the bottleneck).
    pub evaluator_stall_s: f64,
    /// States the driver executed beyond the canonical stop point, then
    /// discarded unprocessed when the verdict landed.
    pub speculative_states_discarded: u64,
    /// Total states observed.
    pub states: usize,
    /// Fault numbers injected into this implementation.
    pub fault_numbers: Vec<u8>,
    /// Snapshot-transport accounting: bytes shipped, the full-snapshot
    /// counterfactual, delta counts and changed selectors.
    pub transport: TransportStats,
    /// Coverage accounting: distinct state fingerprints, fingerprint
    /// transitions, and trace-corpus usage summed over the checked
    /// properties.
    pub coverage: CoverageStats,
    /// Observability metrics aggregated over the check's runs in run-index
    /// order (empty unless the entry was checked through
    /// [`check_entry_observed`] with metrics enabled).
    pub metrics: MetricsRegistry,
}

impl ImplResult {
    /// A latency quantile from the entry's observability metrics, in
    /// microseconds (0 when metrics were off or the histogram is empty).
    #[must_use]
    pub fn latency_quantile_us(&self, histogram: &str, q: f64) -> f64 {
        self.metrics
            .histograms
            .get(histogram)
            .and_then(|h| h.quantile(q))
            .map_or(0.0, |v| v * 1e6)
    }
}

impl ImplResult {
    /// Does the observed verdict agree with Table 1?
    #[must_use]
    pub fn agrees_with_paper(&self) -> bool {
        self.passed != self.expected_to_fail
    }
}

/// Checks one registry entry against the bundled TodoMVC specification.
///
/// # Panics
///
/// Panics if the bundled specification fails to compile or the checker
/// reports a protocol error — both indicate a build problem, not a test
/// failure.
#[must_use]
pub fn check_entry(entry: &'static Entry, options: &CheckOptions) -> ImplResult {
    check_entry_mode(entry, options, SnapshotMode::Delta)
}

/// Checks one registry entry with an explicit snapshot-shipping mode.
/// Everything but the timing and transport columns is mode-independent
/// (pinned by the differential suite).
///
/// # Panics
///
/// See [`check_entry`].
#[must_use]
pub fn check_entry_mode(
    entry: &'static Entry,
    options: &CheckOptions,
    mode: SnapshotMode,
) -> ImplResult {
    check_entry_observed(entry, options, mode, &ObsOptions::disabled()).0
}

/// [`check_entry_mode`] through the observed checker entry point: returns
/// the usual [`ImplResult`] plus the run's observability artifacts (trace
/// tracks, metrics registry, failure explanations). With
/// [`ObsOptions::disabled`] the artifacts are empty and the result is
/// bit-identical to the plain path (pinned by `differential_obs`).
///
/// # Panics
///
/// See [`check_entry`].
#[must_use]
pub fn check_entry_observed(
    entry: &'static Entry,
    options: &CheckOptions,
    mode: SnapshotMode,
    obs: &ObsOptions,
) -> (ImplResult, ObsArtifacts) {
    let spec = todomvc_spec();
    let started = Instant::now();
    let config = mode.config();
    let (report, artifacts) = check_spec_observed(
        &spec,
        options,
        &move || Box::new(WebExecutor::with_config(|| entry.build(), config.clone())),
        obs,
    )
    .expect("no protocol errors");
    let states = report.properties.iter().map(|p| p.states_total).sum();
    let timings = report.timings();
    let result = ImplResult {
        name: entry.name,
        passed: report.passed(),
        expected_to_fail: entry.expected_to_fail(),
        wall_s: started.elapsed().as_secs_f64(),
        executor_s: timings.executor_s,
        eval_s: timings.eval_s,
        atoms_total: timings.atoms_total,
        atoms_reevaluated: timings.atoms_reevaluated,
        atom_memo_hits: timings.atom_memo_hits,
        atom_memo_misses: timings.atom_memo_misses,
        atom_memo_evictions: timings.atom_memo_evictions,
        ltl_states: timings.ltl_states,
        ltl_table_hits: timings.ltl_table_hits,
        step_memo_hits: timings.step_memo_hits,
        pipeline_depth: timings.pipeline_depth,
        executor_stall_s: timings.executor_stall_s,
        evaluator_stall_s: timings.evaluator_stall_s,
        speculative_states_discarded: timings.speculative_states_discarded,
        states,
        fault_numbers: entry.faults.iter().map(|f| f.number()).collect(),
        transport: report.transport(),
        coverage: report.coverage(),
        metrics: artifacts.metrics.clone(),
    };
    (result, artifacts)
}

/// Checks the entire registry, in order.
#[must_use]
pub fn sweep_registry(options: &CheckOptions) -> Vec<ImplResult> {
    sweep_registry_jobs(options, 1)
}

/// Checks a set of registry entries on up to `jobs` worker threads.
///
/// Results come back in input order, and every field except the wall-clock
/// time is independent of `jobs`: the entries don't share any state, so
/// this is the embarrassingly parallel outer level of the Table 1 sweep
/// (the inner level — the runs within one check — is governed by
/// [`CheckOptions::jobs`]).
#[must_use]
pub fn sweep_entries(
    entries: &[&'static Entry],
    options: &CheckOptions,
    jobs: usize,
) -> Vec<ImplResult> {
    sweep_entries_mode(entries, options, jobs, SnapshotMode::Delta)
}

/// [`sweep_entries`] with an explicit snapshot-shipping mode.
#[must_use]
pub fn sweep_entries_mode(
    entries: &[&'static Entry],
    options: &CheckOptions,
    jobs: usize,
    mode: SnapshotMode,
) -> Vec<ImplResult> {
    sweep_entries_observed(entries, options, jobs, mode, &ObsOptions::disabled(), None)
        .into_iter()
        .map(|(result, _)| result)
        .collect()
}

/// The per-entry completion hook for [`sweep_entries_observed`]: called
/// with the entry's registry index and its result.
pub type OnEntryDone<'a> = &'a (dyn Fn(usize, &ImplResult) + Sync);

/// [`sweep_entries_mode`] through the observed entry point, with an
/// optional completion callback.
///
/// `on_done` fires on the worker thread as each entry finishes (in
/// completion order, not input order) — the hook behind the harness's
/// `--progress` line and its streaming per-entry output. Results still
/// come back in input order.
#[must_use]
pub fn sweep_entries_observed(
    entries: &[&'static Entry],
    options: &CheckOptions,
    jobs: usize,
    mode: SnapshotMode,
    obs: &ObsOptions,
    on_done: Option<OnEntryDone<'_>>,
) -> Vec<(ImplResult, ObsArtifacts)> {
    pool::run_ordered(jobs, entries.len(), |i| {
        let pair = check_entry_observed(entries[i], options, mode, obs);
        if let Some(callback) = on_done {
            callback(i, &pair.0);
        }
        pair
    })
}

/// Checks the entire registry on up to `jobs` worker threads, in registry
/// order.
#[must_use]
pub fn sweep_registry_jobs(options: &CheckOptions, jobs: usize) -> Vec<ImplResult> {
    let entries: Vec<&'static Entry> = REGISTRY.iter().collect();
    sweep_entries(&entries, options, jobs)
}

/// Renders sweep results as a JSON document with per-entry, per-phase wall
/// times — the machine-readable output behind `evalharness table1 --json`,
/// meant for perf-trajectory tracking (`BENCH_*.json`).
///
/// The schema is one object with sweep-level metadata (including the
/// one-off `spec_compile_s` phase — the spec is compiled once and shared
/// across entries — the transport totals `shipped_bytes` / `full_bytes` /
/// `delta_ratio`, the coverage totals `distinct_states` /
/// `distinct_edges`, the atom-evaluation totals `atoms_total` /
/// `atoms_reevaluated` plus the expansion-memo totals
/// `atom_memo_hits` / `atom_memo_misses` / `atom_memo_evictions` — the
/// work the value-keyed memo (or the footprint cache) saved — and the
/// automaton counters `ltl_states` / `ltl_table_hits`: the interned
/// residual-state count of the shared transition table and the
/// progression steps it answered by lookup, and the pipeline
/// observability `pipeline_depth` / `executor_stall_s` /
/// `evaluator_stall_s` / `speculative_states_discarded` — which stage of
/// the pipelined runtime bounded the sweep and how much speculative work
/// the verdicts discarded; under pipelining `executor_s` and `eval_s`
/// overlap in wall time and no longer sum to `wall_s`; when the sweep ran
/// with metrics enabled, also the latency quantile columns
/// `step_latency_p{50,95,99}_us` / `send_latency_p{50,95,99}_us`,
/// estimated from the merged fixed-bucket histograms — all zero on a
/// metrics-off sweep) and an
/// `entries` array; every entry carries `name`,
/// `passed`, `expected_to_fail`, `wall_s`, the phase attribution
/// `executor_s`/`eval_s`, the atom counters
/// `atoms_total`/`atoms_reevaluated` and the memo counters
/// `atom_memo_hits`/`atom_memo_misses`/`atom_memo_evictions`, the automaton counters
/// `ltl_states`/`ltl_table_hits`, `states`, `faults`, its snapshot-transport
/// accounting (`shipped_bytes`, `full_bytes`, `delta_states`,
/// `changed_selectors`), and its coverage accounting (`distinct_states`,
/// `distinct_edges`), so a regression can be blamed on a phase — or on
/// the wire, or on lost exploration breadth — instead of only recorded
/// as wall time.
#[must_use]
pub fn sweep_to_json(results: &[ImplResult], jobs: usize, total_wall_s: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"table1_registry_sweep\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"total_wall_s\": {total_wall_s:.4},");
    let _ = writeln!(
        out,
        "  \"spec_compile_s\": {:.6},",
        todomvc_spec_compile_s()
    );
    let _ = writeln!(
        out,
        "  \"states_total\": {},",
        results.iter().map(|r| r.states).sum::<usize>()
    );
    let _ = writeln!(
        out,
        "  \"atoms_total\": {},",
        results.iter().map(|r| r.atoms_total).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"atoms_reevaluated\": {},",
        results.iter().map(|r| r.atoms_reevaluated).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"atom_memo_hits\": {},",
        results.iter().map(|r| r.atom_memo_hits).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"atom_memo_misses\": {},",
        results.iter().map(|r| r.atom_memo_misses).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"atom_memo_evictions\": {},",
        results.iter().map(|r| r.atom_memo_evictions).sum::<u64>()
    );
    // The transition table is shared across entries (it hangs off the
    // once-compiled spec), so the sweep-level state count is the maximum
    // snapshot, not a per-entry sum; hits are genuinely additive.
    let _ = writeln!(
        out,
        "  \"ltl_states\": {},",
        results.iter().map(|r| r.ltl_states).max().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "  \"ltl_table_hits\": {},",
        results.iter().map(|r| r.ltl_table_hits).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"step_memo_hits\": {},",
        results.iter().map(|r| r.step_memo_hits).sum::<u64>()
    );
    // Pipeline observability: the depth is a configuration echo (max),
    // the stalls say which stage bounded the sweep, and the discard count
    // is the price of speculation (work done past the canonical stop).
    let _ = writeln!(
        out,
        "  \"pipeline_depth\": {},",
        results.iter().map(|r| r.pipeline_depth).max().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "  \"executor_stall_s\": {:.4},",
        results.iter().map(|r| r.executor_stall_s).sum::<f64>()
    );
    let _ = writeln!(
        out,
        "  \"evaluator_stall_s\": {:.4},",
        results.iter().map(|r| r.evaluator_stall_s).sum::<f64>()
    );
    let _ = writeln!(
        out,
        "  \"speculative_states_discarded\": {},",
        results
            .iter()
            .map(|r| r.speculative_states_discarded)
            .sum::<u64>()
    );
    // Latency quantiles from the merged metrics registries (all-zero when
    // the sweep ran with metrics off — the merged histograms are empty).
    let mut merged = MetricsRegistry::new();
    for r in results {
        merged.merge(&r.metrics);
    }
    let quantile_us = |histogram: &str, q: f64| -> f64 {
        merged
            .histograms
            .get(histogram)
            .and_then(|h| h.quantile(q))
            .map_or(0.0, |v| v * 1e6)
    };
    for (column, histogram) in [
        ("step_latency", STEP_LATENCY),
        ("send_latency", SEND_LATENCY),
    ] {
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let _ = writeln!(
                out,
                "  \"{column}_{suffix}_us\": {:.3},",
                quantile_us(histogram, q)
            );
        }
    }
    let mut transport = TransportStats::default();
    for r in results {
        transport.absorb(r.transport);
    }
    let _ = writeln!(out, "  \"shipped_bytes\": {},", transport.shipped_bytes);
    let _ = writeln!(out, "  \"full_bytes\": {},", transport.full_bytes);
    let _ = writeln!(out, "  \"delta_ratio\": {:.4},", transport.delta_ratio());
    let mut coverage = CoverageStats::default();
    for r in results {
        coverage.absorb(r.coverage);
    }
    let _ = writeln!(out, "  \"distinct_states\": {},", coverage.distinct_states);
    let _ = writeln!(out, "  \"distinct_edges\": {},", coverage.distinct_edges);
    let _ = writeln!(out, "  \"entries\": [");
    for (i, r) in results.iter().enumerate() {
        let faults: Vec<String> = r.fault_numbers.iter().map(ToString::to_string).collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"passed\": {}, \"expected_to_fail\": {}, \
             \"wall_s\": {:.4}, \"executor_s\": {:.4}, \"eval_s\": {:.4}, \
             \"atoms_total\": {}, \"atoms_reevaluated\": {}, \
             \"atom_memo_hits\": {}, \"atom_memo_misses\": {}, \
             \"atom_memo_evictions\": {}, \
             \"ltl_states\": {}, \"ltl_table_hits\": {}, \
             \"step_memo_hits\": {}, \
             \"pipeline_depth\": {}, \"executor_stall_s\": {:.4}, \
             \"evaluator_stall_s\": {:.4}, \
             \"speculative_states_discarded\": {}, \
             \"states\": {}, \"faults\": [{}], \
             \"shipped_bytes\": {}, \"full_bytes\": {}, \"delta_states\": {}, \
             \"changed_selectors\": {}, \
             \"distinct_states\": {}, \"distinct_edges\": {}, \
             \"step_latency_p50_us\": {:.3}, \"step_latency_p95_us\": {:.3}, \
             \"step_latency_p99_us\": {:.3}, \
             \"send_latency_p50_us\": {:.3}, \"send_latency_p95_us\": {:.3}, \
             \"send_latency_p99_us\": {:.3}}}",
            r.name,
            r.passed,
            r.expected_to_fail,
            r.wall_s,
            r.executor_s,
            r.eval_s,
            r.atoms_total,
            r.atoms_reevaluated,
            r.atom_memo_hits,
            r.atom_memo_misses,
            r.atom_memo_evictions,
            r.ltl_states,
            r.ltl_table_hits,
            r.step_memo_hits,
            r.pipeline_depth,
            r.executor_stall_s,
            r.evaluator_stall_s,
            r.speculative_states_discarded,
            r.states,
            faults.join(", "),
            r.transport.shipped_bytes,
            r.transport.full_bytes,
            r.transport.delta_states,
            r.transport.changed_selectors,
            r.coverage.distinct_states,
            r.coverage.distinct_edges,
            r.latency_quantile_us(STEP_LATENCY, 0.50),
            r.latency_quantile_us(STEP_LATENCY, 0.95),
            r.latency_quantile_us(STEP_LATENCY, 0.99),
            r.latency_quantile_us(SEND_LATENCY, 0.50),
            r.latency_quantile_us(SEND_LATENCY, 0.95),
            r.latency_quantile_us(SEND_LATENCY, 0.99),
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One point of the Figure 13 sweep.
#[derive(Debug, Clone)]
pub struct SubscriptPoint {
    /// The temporal-operator subscript (trace length), Figure 13's x axis.
    pub subscript: u32,
    /// Percentage of checking sessions on faulty implementations that
    /// unexpectedly passed.
    pub false_negative_pct: f64,
    /// Mean wall-clock seconds per session on passing implementations.
    pub passing_wall_s: f64,
    /// Mean virtual milliseconds of "user interaction" per passing run —
    /// the deterministic analogue of the paper's running time, dominated
    /// (as in the paper) by waiting for the application rather than by
    /// hardware speed.
    pub passing_virtual_ms: f64,
    /// Sessions run against faulty implementations.
    pub faulty_sessions: usize,
}

/// Runs the Figure 13 sweep for one subscript value.
///
/// Each *session* checks one implementation with `runs_per_session` test
/// runs at demand `subscript` (the run length the formula demands). The
/// false-negative rate counts sessions on faulty implementations that
/// found nothing; the running time is measured on passing implementations
/// only — exactly the paper's methodology (§4.3: failing runs exit early,
/// so passing cases dominate the time, and only false *negatives* are
/// possible for a safety-only specification).
#[must_use]
pub fn figure13_point(subscript: u32, sessions: usize, runs_per_session: usize) -> SubscriptPoint {
    let mut faulty_sessions = 0usize;
    let mut false_negatives = 0usize;
    for entry in REGISTRY.iter().filter(|e| e.expected_to_fail()) {
        for session in 0..sessions {
            let options = CheckOptions::default()
                .with_tests(runs_per_session)
                .with_max_actions(subscript as usize + 10)
                .with_default_demand(subscript)
                .with_seed(0xF16 ^ ((session as u64) << 8) ^ u64::from(subscript))
                .with_shrink(false);
            let result = check_entry(entry, &options);
            faulty_sessions += 1;
            if result.passed {
                false_negatives += 1;
            }
        }
    }

    // Running time on (a sample of) passing implementations.
    let mut wall = Vec::new();
    let mut virtual_ms = Vec::new();
    for entry in REGISTRY.iter().filter(|e| !e.expected_to_fail()).take(5) {
        let spec = todomvc_spec();
        let options = CheckOptions::default()
            .with_tests(runs_per_session)
            .with_max_actions(subscript as usize + 10)
            .with_default_demand(subscript)
            .with_seed(u64::from(subscript))
            .with_shrink(false);
        let started = Instant::now();
        // Track virtual time by keeping the last executor alive per run.
        let report = check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| entry.build()))
        })
        .expect("no protocol errors");
        assert!(report.passed(), "{}: {report}", entry.name);
        wall.push(started.elapsed().as_secs_f64());
        // Virtual interaction time: one deliberation millisecond per
        // action plus waits; approximate from states (1ms per message).
        let states: usize = report.properties.iter().map(|p| p.states_total).sum();
        virtual_ms.push(states as f64);
    }
    #[allow(clippy::cast_precision_loss)]
    SubscriptPoint {
        subscript,
        false_negative_pct: if faulty_sessions == 0 {
            0.0
        } else {
            100.0 * false_negatives as f64 / faulty_sessions as f64
        },
        passing_wall_s: wall.iter().sum::<f64>() / wall.len().max(1) as f64,
        passing_virtual_ms: virtual_ms.iter().sum::<f64>() / virtual_ms.len().max(1) as f64,
        faulty_sessions,
    }
}

/// The Table 2 fault descriptions, for printing.
#[must_use]
pub fn fault_description(number: u8) -> &'static str {
    quickstrom::quickstrom_apps::Fault::all()
        .iter()
        .find(|f| f.number() == number)
        .map_or("?", |f| f.description())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom::quickstrom_apps::registry;

    fn quick_options() -> CheckOptions {
        CheckOptions::default()
            .with_tests(25)
            .with_max_actions(50)
            .with_default_demand(40)
            .with_seed(1)
            .with_shrink(false)
    }

    #[test]
    fn passing_entry_checks_clean() {
        let result = check_entry(registry::by_name("vue").unwrap(), &quick_options());
        assert!(result.passed);
        assert!(result.agrees_with_paper());
        assert!(result.states > 0);
    }

    #[test]
    fn failing_entry_is_flagged() {
        let result = check_entry(registry::by_name("elm").unwrap(), &quick_options());
        assert!(!result.passed);
        assert!(result.agrees_with_paper());
        assert_eq!(result.fault_numbers, vec![7]);
    }

    #[test]
    fn figure13_point_runs() {
        // A tiny configuration just to exercise the plumbing.
        let point = figure13_point(8, 1, 1);
        assert_eq!(point.subscript, 8);
        assert_eq!(point.faulty_sessions, 20);
        assert!(point.false_negative_pct >= 0.0);
    }

    #[test]
    fn fault_descriptions_resolve() {
        assert!(fault_description(7).contains("pending input"));
        assert_eq!(fault_description(99), "?");
    }
}
