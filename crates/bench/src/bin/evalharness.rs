//! The evaluation harness: regenerates every table and figure of the
//! paper's evaluation (§4), plus the ablations from DESIGN.md.
//!
//! ```text
//! cargo run --release -p quickstrom-bench --bin evalharness -- table1 [--jobs 4] [--json BENCH_table1.json] [--full-snapshots] [--strategy least-tried] [--no-mask-atoms] [--eval-mode automaton|stepper] [--atom-cache value|footprint|off] [--atom-memo-capacity N] [--pipeline on|off] [--pipeline-depth N] [--multiplex M] [--step-memo on|off] [--progress] [--metrics] [--metrics-out metrics.prom]
//! cargo run --release -p quickstrom-bench --bin evalharness -- table2 [--jobs 4]
//! cargo run --release -p quickstrom-bench --bin evalharness -- obs-smoke [--trace-out trace.json] [--trace-timeline timeline.txt] [--metrics-out metrics.prom] [--explain-out explain.json]
//! cargo run --release -p quickstrom-bench --bin evalharness -- figure13 [--sessions 10] [--runs 3] [--csv fig13.csv]
//! cargo run --release -p quickstrom-bench --bin evalharness -- delta-compare [--tests 10] [--jobs 4] [--json BENCH_delta_compare.json]
//! cargo run --release -p quickstrom-bench --bin evalharness -- coverage-compare [--tests 30] [--jobs 4] [--json BENCH_coverage_compare.json]
//! cargo run --release -p quickstrom-bench --bin evalharness -- lint [--json lint.json] [--deny-warnings]
//! cargo run --release -p quickstrom-bench --bin evalharness -- ablation-rvltl
//! cargo run --release -p quickstrom-bench --bin evalharness -- ablation-simplify
//! cargo run --release -p quickstrom-bench --bin evalharness -- all [--jobs 4]
//! ```
//!
//! `--jobs N` fans the registry sweep out over N worker threads. Every
//! verdict, fault attribution and state count is identical for every N
//! (see DESIGN.md, *Parallel runtime*); only the timing columns vary —
//! per-entry wall times are measured under whatever contention the worker
//! count creates, so compare `wall_s` values only between runs with the
//! same `--jobs`. `--json PATH` writes the per-entry wall-time JSON used
//! for perf-trajectory tracking — since the incremental snapshot pipeline
//! it also carries per-entry transport accounting (bytes shipped, the
//! full-snapshot counterfactual, delta counts, changed selectors).
//! `--full-snapshots` runs the sweep over the pre-incremental protocol
//! (every message a complete snapshot); `delta-compare` runs both modes
//! on TodoMVC and the BigTable grid, asserts they agree bit-for-bit, and
//! writes a comparison JSON. `--strategy uniform|least-tried|novelty`
//! selects the action-selection strategy (see DESIGN.md, *Exploration
//! engine*); `coverage-compare` sweeps all three strategies over the
//! TodoMVC, BigTable and Wizard workloads at an equal step budget and
//! reports distinct-fingerprint coverage per strategy — under both the
//! spec-agnostic shape fingerprint and the spec-aware projection
//! fingerprint derived from the compiled spec's static analysis.
//! `--eval-mode automaton|stepper` selects how formulae are progressed
//! (the table-driven evaluation automaton — the default — or the plain
//! stepper kept as its differential oracle; see DESIGN.md, *Evaluation
//! automata*). Verdicts and state counts are identical in both modes;
//! only the timing and `ltl_*` counter columns change.
//! `--atom-cache value|footprint|off` selects how atom expansions are
//! reused across states (the value-keyed expansion memo — the default —
//! the older evict-on-delta footprint cache, or no reuse; see DESIGN.md,
//! *Atom expansion memoization*). Verdicts and state counts are
//! identical in every mode (pinned by `differential_atom_memo`); the
//! timing and `atoms_*`/`atom_memo_*` columns change.
//! `--atom-memo-capacity N` bounds the memo's entry count (FIFO
//! eviction; the default 65,536 never evicts on the bundled sweep).
//! `--pipeline on|off` selects the session runtime (the two-stage
//! pipelined engine — the default — or the sequential engine kept as its
//! differential oracle; see DESIGN.md, *Pipelined runtime*). Verdicts,
//! state counts and atom counters are identical in both modes (pinned by
//! `differential_pipeline`); the timing columns change — and under
//! pipelining `executor_s`/`eval_s` overlap, so they no longer sum to
//! `wall_s`. `--pipeline-depth N` bounds the speculation window (states
//! the executor may run ahead of the evaluator); `--multiplex M` lets
//! every worker interleave M in-flight sessions to hide executor latency.
//! `--step-memo on|off` switches the state-value step memo, which answers
//! whole automaton transitions from a per-property cache keyed by
//! (automaton state, bindings signature, state-value signature). Replays
//! are exact — verdicts, state counts *and* atom counters are identical
//! in both modes (pinned by `differential_pipeline`); only the timing
//! columns and `step_memo_hits` change.
//! `--progress` keeps a single live line (done/running/ETA) on the
//! terminal during the sweep; it is silent when stdout is not a TTY, so
//! redirected logs stay clean. `--metrics` collects the observability
//! histograms (step latency, executor send latency, pipeline stalls,
//! memo probe depth) during the sweep and adds the p50/p95/p99 columns
//! to the JSON; `--metrics-out PATH` also writes the merged registry in
//! the Prometheus text exposition format (and implies `--metrics`).
//! `obs-smoke` checks a known-faulty registry implementation with
//! tracing and metrics fully enabled on the pipelined, multiplexed
//! runtime, asserts the artifacts are structurally sound — every span
//! track well-formed, driver/evaluator stages on separate tracks, the
//! failure explanation naming the injected fault's atom — and writes the
//! chrome://tracing JSON, the human-readable timeline, the Prometheus
//! metrics and the explanation JSON (the CI observability smoke).
//! `lint` runs the spec static analysis over every bundled specification
//! and prints its diagnostics (vacuous implications, tautological or
//! unsatisfiable properties, unused bindings/actions/selectors) with
//! source positions; `--deny-warnings` exits non-zero on any finding
//! (the CI smoke), `--json PATH` writes the machine-readable report.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry::{Maturity, REGISTRY};
use quickstrom::quickstrom_apps::MenuApp;
use quickstrom::quickstrom_obs::metrics::{SEND_LATENCY, STEP_LATENCY};
use quickstrom_bench::{
    check_entry_observed, fault_description, figure13_point, sweep_entries_mode,
    sweep_entries_observed, sweep_to_json, ImplResult, SnapshotMode,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{IsTerminal, Write as _};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let flag = |name: &str| -> Option<String> {
        let position = args.iter().position(|a| a == name)?;
        match args.get(position + 1) {
            // The next token being another flag means the value is
            // missing — `--json --jobs 4` must not write a file named
            // `--jobs` after a multi-minute sweep.
            Some(value) if !value.starts_with("--") => Some(value.clone()),
            _ => {
                eprintln!("flag {name} requires a value; ignoring it");
                None
            }
        }
    };
    let sessions: usize = flag("--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let runs: usize = flag("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let tests: usize = flag("--tests").and_then(|v| v.parse().ok()).unwrap_or(100);
    let jobs: usize = flag("--jobs").and_then(|v| v.parse().ok()).unwrap_or(1);
    let csv = flag("--csv");
    let json = flag("--json");
    let mode = if args.iter().any(|a| a == "--full-snapshots") {
        SnapshotMode::Full
    } else {
        SnapshotMode::Delta
    };
    let mask_atoms = !args.iter().any(|a| a == "--no-mask-atoms");
    let strategy = match flag("--strategy") {
        Some(name) => match SelectionStrategy::parse(&name) {
            Some(s) => s,
            None => {
                eprintln!(
                    "unknown strategy {name:?} (expected uniform, least-tried \
                     or novelty)"
                );
                std::process::exit(2);
            }
        },
        None => SelectionStrategy::default(),
    };
    let eval_mode = match flag("--eval-mode") {
        Some(name) => match EvalMode::parse(&name) {
            Some(m) => m,
            None => {
                eprintln!("unknown eval mode {name:?} (expected automaton or stepper)");
                std::process::exit(2);
            }
        },
        None => EvalMode::default(),
    };
    let atom_cache = match flag("--atom-cache") {
        Some(name) => match AtomCacheMode::parse(&name) {
            Some(m) => m,
            None => {
                eprintln!("unknown atom cache mode {name:?} (expected value, footprint or off)");
                std::process::exit(2);
            }
        },
        None => AtomCacheMode::default(),
    };
    let atom_memo_capacity: Option<usize> =
        flag("--atom-memo-capacity").and_then(|v| v.parse().ok());
    let pipeline = match flag("--pipeline") {
        Some(name) => match PipelineMode::parse(&name) {
            Some(m) => m,
            None => {
                eprintln!("unknown pipeline mode {name:?} (expected on or off)");
                std::process::exit(2);
            }
        },
        None => PipelineMode::default(),
    };
    let pipeline_depth: Option<usize> = flag("--pipeline-depth").and_then(|v| v.parse().ok());
    let multiplex: Option<usize> = flag("--multiplex").and_then(|v| v.parse().ok());
    let progress = args.iter().any(|a| a == "--progress");
    let metrics = args.iter().any(|a| a == "--metrics");
    let metrics_out = flag("--metrics-out");
    let trace_out = flag("--trace-out");
    let trace_timeline = flag("--trace-timeline");
    let explain_out = flag("--explain-out");
    let step_memo = match flag("--step-memo").as_deref() {
        Some("on") => true,
        Some("off") => false,
        Some(name) => {
            eprintln!("unknown step memo mode {name:?} (expected on or off)");
            std::process::exit(2);
        }
        None => CheckOptions::default().step_memo,
    };
    let pipeline_options = move |options: CheckOptions| {
        let options = options.with_pipeline(pipeline).with_step_memo(step_memo);
        let options = match pipeline_depth {
            Some(depth) => options.with_pipeline_depth(depth),
            None => options,
        };
        match multiplex {
            Some(m) => options.with_multiplex(m),
            None => options,
        }
    };

    match command {
        "table1" => {
            table1_and_2(
                tests,
                false,
                jobs,
                json.as_deref(),
                mode,
                strategy,
                mask_atoms,
                eval_mode,
                atom_cache,
                atom_memo_capacity,
                &pipeline_options,
                progress,
                metrics,
                metrics_out.as_deref(),
            );
        }
        "table2" => {
            table1_and_2(
                tests,
                true,
                jobs,
                json.as_deref(),
                mode,
                strategy,
                mask_atoms,
                eval_mode,
                atom_cache,
                atom_memo_capacity,
                &pipeline_options,
                progress,
                metrics,
                metrics_out.as_deref(),
            );
        }
        "obs-smoke" => obs_smoke(
            trace_out.as_deref(),
            trace_timeline.as_deref(),
            metrics_out.as_deref(),
            explain_out.as_deref(),
        ),
        "figure13" => figure13(sessions, runs, csv.as_deref()),
        "delta-compare" => delta_compare(tests, jobs, json.as_deref()),
        "coverage-compare" => coverage_compare(tests, jobs, json.as_deref()),
        "lint" => lint_specs(json.as_deref(), args.iter().any(|a| a == "--deny-warnings")),
        "ablation-rvltl" => ablation_rvltl(),
        "ablation-simplify" => ablation_simplify(),
        "ablation-strategy" => ablation_strategy(),
        "all" => {
            table1_and_2(
                tests,
                true,
                jobs,
                json.as_deref(),
                mode,
                strategy,
                mask_atoms,
                eval_mode,
                atom_cache,
                atom_memo_capacity,
                &pipeline_options,
                progress,
                metrics,
                metrics_out.as_deref(),
            );
            obs_smoke(None, None, None, None);
            figure13(sessions.min(3), runs, csv.as_deref());
            delta_compare(tests.min(10), jobs, None);
            coverage_compare(tests.min(30), jobs, None);
            lint_specs(None, false);
            ablation_rvltl();
            ablation_simplify();
            ablation_strategy();
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!(
                "commands: table1 table2 obs-smoke figure13 delta-compare \
                 coverage-compare lint ablation-rvltl ablation-simplify \
                 ablation-strategy all"
            );
            std::process::exit(2);
        }
    }
}

/// Runs the registry sweep and prints Table 1 (and optionally Table 2).
/// `pipeline_options` applies the `--pipeline` / `--pipeline-depth` /
/// `--multiplex` flags on top of the base options.
#[allow(clippy::fn_params_excessive_bools, clippy::too_many_arguments)]
fn table1_and_2(
    tests: usize,
    with_table2: bool,
    jobs: usize,
    json: Option<&str>,
    mode: SnapshotMode,
    strategy: SelectionStrategy,
    mask_atoms: bool,
    eval_mode: EvalMode,
    atom_cache: AtomCacheMode,
    atom_memo_capacity: Option<usize>,
    pipeline_options: &dyn Fn(CheckOptions) -> CheckOptions,
    progress: bool,
    metrics: bool,
    metrics_out: Option<&str>,
) {
    println!("═══ Table 1: Summary of Results (TodoMVC registry sweep) ═══");
    println!(
        "    ({} implementations, {} runs each, subscript 100 — the paper's default, {} job(s), {} snapshots, {} strategy, atom masks {}, {} evaluation, {} atom cache)",
        REGISTRY.len(),
        tests,
        jobs.max(1),
        match mode {
            SnapshotMode::Delta => "incremental",
            SnapshotMode::Full => "full",
        },
        strategy,
        if mask_atoms { "on" } else { "off" },
        eval_mode,
        atom_cache
    );
    {
        let probe = pipeline_options(CheckOptions::default());
        println!(
            "    (pipeline {}, depth {}, multiplex {})",
            probe.pipeline, probe.pipeline_depth, probe.multiplex
        );
    }
    let options = CheckOptions::default()
        .with_tests(tests)
        .with_max_actions(120)
        .with_default_demand(100)
        .with_seed(20220322) // the paper's arXiv date
        .with_shrink(false)
        .with_strategy(strategy)
        .with_mask_atoms(mask_atoms)
        .with_eval_mode(eval_mode)
        .with_atom_cache(atom_cache);
    let options = match atom_memo_capacity {
        Some(capacity) => options.with_atom_memo_capacity(capacity),
        None => options,
    };
    let options = pipeline_options(options);
    let print_line = |result: &ImplResult| {
        println!(
            "  {:>22}  {}  ({:5.2}s, {} states){}",
            result.name,
            if result.passed { "passed" } else { "FAILED" },
            result.wall_s,
            result.states,
            if result.agrees_with_paper() {
                ""
            } else {
                "  ⚠ disagrees with Table 1"
            }
        );
    };
    let started = std::time::Instant::now();
    let entries: Vec<&'static quickstrom::quickstrom_apps::registry::Entry> =
        REGISTRY.iter().collect();
    let obs = if metrics || metrics_out.is_some() {
        ObsOptions {
            tracing: None,
            metrics: true,
        }
    } else {
        ObsOptions::disabled()
    };
    // The live progress line needs a terminal: carriage-return rewrites
    // are noise in a redirected log, so a non-TTY stdout silences it.
    let live = progress && std::io::stdout().is_terminal();
    let total = entries.len();
    let finished = std::sync::atomic::AtomicUsize::new(0);
    let on_done = |_: usize, result: &ImplResult| {
        let done = finished.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if live {
            let elapsed = started.elapsed().as_secs_f64();
            #[allow(clippy::cast_precision_loss)]
            let eta = elapsed / done as f64 * (total - done) as f64;
            print!(
                "\r  [{done:>2}/{total}] {:<22} done  ({elapsed:5.1}s elapsed, ~{eta:.0}s left)   ",
                result.name
            );
            let _ = std::io::stdout().flush();
        } else if jobs <= 1 {
            // Sequential, no live line: stream each entry's line as it
            // completes, so the multi-minute default sweep shows progress.
            print_line(result);
        }
    };
    let results: Vec<ImplResult> =
        sweep_entries_observed(&entries, &options, jobs.max(1), mode, &obs, Some(&on_done))
            .into_iter()
            .map(|(result, _)| result)
            .collect();
    if live {
        print!("\r{:78}\r", "");
    }
    if live || jobs > 1 {
        // Entries finished out of order (pool) or behind the progress
        // line; print the canonical registry-order listing now.
        results.iter().for_each(&print_line);
    }

    let maturity = |name: &str| {
        REGISTRY
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.maturity)
            .expect("registry name")
    };
    let passed: Vec<&ImplResult> = results.iter().filter(|r| r.passed).collect();
    let failed: Vec<&ImplResult> = results.iter().filter(|r| !r.passed).collect();
    let count_beta = |rs: &[&ImplResult]| {
        rs.iter()
            .filter(|r| maturity(r.name) == Maturity::Beta)
            .count()
    };

    let render = |rs: &[&ImplResult]| {
        let mut line = String::new();
        for (i, r) in rs.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str(r.name);
            if !r.fault_numbers.is_empty() && !r.passed {
                let nums: Vec<String> = r.fault_numbers.iter().map(ToString::to_string).collect();
                let _ = write!(line, "^{}", nums.join(","));
            }
        }
        line
    };

    println!();
    println!(
        "Passed — {} ({} beta, {} mature)",
        passed.len(),
        count_beta(&passed),
        passed.len() - count_beta(&passed)
    );
    println!("  {}", render(&passed));
    println!(
        "Failed — {} ({} beta, {} mature)",
        failed.len(),
        count_beta(&failed),
        failed.len() - count_beta(&failed)
    );
    println!("  {}", render(&failed));
    let agreement = results.iter().filter(|r| r.agrees_with_paper()).count();
    println!(
        "agreement with the paper's Table 1: {agreement}/{} ({:.1}s total)",
        results.len(),
        started.elapsed().as_secs_f64()
    );
    println!("paper: Passed — 23 (9 beta, 14 mature); Failed — 20 (8 beta, 12 mature)");
    let mut transport = TransportStats::default();
    for r in &results {
        transport.absorb(r.transport);
    }
    println!(
        "snapshot transport: {} bytes shipped vs {} full-snapshot bytes \
         (ratio {:.3}, {} deltas, {} changed selectors)",
        transport.shipped_bytes,
        transport.full_bytes,
        transport.delta_ratio(),
        transport.delta_states,
        transport.changed_selectors
    );
    let mut coverage = CoverageStats::default();
    for r in &results {
        coverage.absorb(r.coverage);
    }
    println!(
        "state coverage: {} distinct fingerprints, {} transitions \
         (summed per entry; strategy {})",
        coverage.distinct_states, coverage.distinct_edges, strategy
    );
    let atoms_total: u64 = results.iter().map(|r| r.atoms_total).sum();
    let atoms_reevaluated: u64 = results.iter().map(|r| r.atoms_reevaluated).sum();
    #[allow(clippy::cast_precision_loss)]
    let reeval_pct = 100.0 * atoms_reevaluated as f64 / (atoms_total.max(1)) as f64;
    println!(
        "atom evaluation: {atoms_reevaluated} of {atoms_total} requested expansions \
         re-evaluated ({reeval_pct:.1}%; the rest served from the expansion cache)"
    );
    if options.effective_atom_cache() == AtomCacheMode::Value {
        let memo_hits: u64 = results.iter().map(|r| r.atom_memo_hits).sum();
        let memo_misses: u64 = results.iter().map(|r| r.atom_memo_misses).sum();
        let memo_evictions: u64 = results.iter().map(|r| r.atom_memo_evictions).sum();
        #[allow(clippy::cast_precision_loss)]
        let hit_pct = 100.0 * memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64;
        println!(
            "expansion memo: {memo_hits} hits, {memo_misses} misses \
             ({hit_pct:.1}% hit rate, {memo_evictions} evictions; value-keyed, \
             shared per property)"
        );
    }
    if eval_mode == EvalMode::Automaton {
        let ltl_states = results.iter().map(|r| r.ltl_states).max().unwrap_or(0);
        let ltl_table_hits: u64 = results.iter().map(|r| r.ltl_table_hits).sum();
        let step_memo_hits: u64 = results.iter().map(|r| r.step_memo_hits).sum();
        println!(
            "evaluation automaton: {ltl_states} residual state(s) interned, \
             {ltl_table_hits} progression steps answered by table lookup, \
             {step_memo_hits} answered wholesale by the step memo"
        );
    }
    if obs.metrics {
        let mut merged = MetricsRegistry::new();
        for r in &results {
            merged.merge(&r.metrics);
        }
        let quantile_us = |histogram: &str, q: f64| -> f64 {
            merged
                .histograms
                .get(histogram)
                .and_then(|h| h.quantile(q))
                .map_or(0.0, |v| v * 1e6)
        };
        println!(
            "latency quantiles: step p50/p95/p99 {:.1}/{:.1}/{:.1} µs, \
             send p50/p95/p99 {:.1}/{:.1}/{:.1} µs",
            quantile_us(STEP_LATENCY, 0.50),
            quantile_us(STEP_LATENCY, 0.95),
            quantile_us(STEP_LATENCY, 0.99),
            quantile_us(SEND_LATENCY, 0.50),
            quantile_us(SEND_LATENCY, 0.95),
            quantile_us(SEND_LATENCY, 0.99),
        );
        if let Some(path) = metrics_out {
            std::fs::write(path, merged.to_prometheus("quickstrom_")).expect("write metrics");
            println!("wrote {path}");
        }
    }

    if let Some(path) = json {
        let doc = sweep_to_json(&results, jobs.max(1), started.elapsed().as_secs_f64());
        std::fs::write(path, doc).expect("write JSON");
        println!("wrote {path}");
    }

    if with_table2 {
        println!();
        println!("═══ Table 2: Problems found in TodoMVC implementations ═══");
        let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
        for r in &failed {
            for n in &r.fault_numbers {
                *counts.entry(*n).or_default() += 1;
            }
        }
        println!("   #  {:<72} Count", "Description");
        for n in 1..=14u8 {
            let count = counts.get(&n).copied().unwrap_or(0);
            println!("  {:>2}  {:<72} {}", n, fault_description(n), count);
        }
        println!(
            "paper row counts: 1,2,1,1,1,1,4,2,1,1,1,1,2,1 (problem 4 is 2 here; see\n\
             DESIGN.md on reconciling Table 1's superscripts with Table 2's counts)"
        );
    }
}

/// The observability smoke: checks a known-faulty registry entry (the
/// `angular2_es2015` build, whose injected fault removes the completion
/// checkboxes the `checkboxInv` property reads through `.toggle`) with
/// tracing and metrics fully enabled on the pipelined, multiplexed
/// runtime. Asserts the artifacts are structurally sound — every span
/// track well-formed with nothing dropped, driver/evaluator stages on
/// separate tracks, the failure explanation naming the faulty atom — then
/// writes the requested outputs. Any violated invariant panics, so CI can
/// run this as a hard gate.
fn obs_smoke(
    trace_out: Option<&str>,
    timeline_out: Option<&str>,
    metrics_out: Option<&str>,
    explain_out: Option<&str>,
) {
    use quickstrom::quickstrom_apps::registry;
    use quickstrom::quickstrom_obs::{chrome_trace_json, render_timeline};

    println!("═══ Observability smoke: faulty TodoMVC under full tracing ═══");
    let entry = registry::by_name("angular2_es2015").expect("registry name");
    let options = CheckOptions::default()
        .with_tests(20)
        .with_max_actions(60)
        .with_default_demand(50)
        .with_seed(20220322)
        .with_jobs(2)
        .with_multiplex(3);
    let obs = ObsOptions::all();
    let (result, artifacts) = check_entry_observed(entry, &options, SnapshotMode::Delta, &obs);
    assert!(!result.passed, "the injected fault must be found");

    // The pipelined stages must land on separate tracks, every track must
    // nest properly, and the ring buffers must not have overflowed.
    let tracks = &artifacts.trace.tracks;
    assert!(
        tracks.iter().any(|t| t.name.contains("driver")),
        "driver track missing"
    );
    assert!(
        tracks.iter().any(|t| t.name.contains("evaluator")),
        "evaluator track missing"
    );
    assert!(
        tracks.iter().any(|t| t.name.contains("shrink")),
        "shrink track missing"
    );
    for track in tracks {
        track
            .check_well_formed()
            .unwrap_or_else(|e| panic!("track {:?}: {e}", track.name));
        assert_eq!(track.dropped, 0, "track {:?} overflowed", track.name);
    }
    println!(
        "  trace: {} tracks, {} events, all well-formed",
        tracks.len(),
        artifacts.trace.event_count()
    );

    // The explanation must blame the atom the fault actually breaks: the
    // checkbox invariant reads the implementation through `.toggle`.
    let explanation = artifacts
        .explanations
        .first()
        .expect("a failure explanation");
    let names_toggle =
        explanation.steps.iter().flat_map(|s| &s.flips).any(|f| {
            f.atom.contains(".toggle") || f.selectors.iter().any(|s| s.contains(".toggle"))
        });
    assert!(
        names_toggle,
        "explanation must name the `.toggle` atom:\n{explanation}"
    );
    assert!(
        explanation.failed_at_step.is_some(),
        "explanation must locate the step where the residual became False"
    );
    let step_count = artifacts
        .metrics
        .histograms
        .get(STEP_LATENCY)
        .map_or(0, |h| h.count);
    assert!(step_count > 0, "step-latency histogram must be populated");
    println!();
    println!("{explanation}");

    if let Some(path) = trace_out {
        std::fs::write(path, chrome_trace_json(&artifacts.trace)).expect("write trace");
        println!("wrote {path}");
    }
    if let Some(path) = timeline_out {
        std::fs::write(path, render_timeline(&artifacts.trace)).expect("write timeline");
        println!("wrote {path}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, artifacts.metrics.to_prometheus("quickstrom_"))
            .expect("write metrics");
        println!("wrote {path}");
    }
    if let Some(path) = explain_out {
        let mut doc = String::from("[\n");
        for (i, e) in artifacts.explanations.iter().enumerate() {
            doc.push_str(&e.to_json());
            doc.push_str(if i + 1 < artifacts.explanations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        doc.push_str("]\n");
        std::fs::write(path, doc).expect("write explanations");
        println!("wrote {path}");
    }
}

/// Runs TodoMVC (the whole registry) and the BigTable grid in both
/// snapshot modes, asserts the reports agree bit-for-bit, and reports the
/// wall-time and bytes-shipped comparison.
fn delta_compare(tests: usize, jobs: usize, json: Option<&str>) {
    use quickstrom::quickstrom_apps::BigTable;
    use std::fmt::Write as _;

    println!("═══ Delta vs full-snapshot comparison ═══");
    let options = CheckOptions::default()
        .with_tests(tests)
        .with_max_actions(120)
        .with_default_demand(100)
        .with_seed(20220322)
        .with_shrink(false);

    // TodoMVC: the whole 43-entry registry, both modes.
    let entries: Vec<&'static quickstrom::quickstrom_apps::registry::Entry> =
        REGISTRY.iter().collect();
    let run_sweep = |mode: SnapshotMode| {
        let started = std::time::Instant::now();
        let results = sweep_entries_mode(&entries, &options, jobs.max(1), mode);
        (results, started.elapsed().as_secs_f64())
    };
    let (delta_results, delta_wall) = run_sweep(SnapshotMode::Delta);
    let (full_results, full_wall) = run_sweep(SnapshotMode::Full);
    for (d, f) in delta_results.iter().zip(&full_results) {
        assert_eq!(
            (d.name, d.passed, d.states),
            (f.name, f.passed, f.states),
            "delta mode must be bit-identical to full mode"
        );
    }
    let sum = |rs: &[ImplResult], f: &dyn Fn(&ImplResult) -> u64| rs.iter().map(f).sum::<u64>();
    let delta_shipped = sum(&delta_results, &|r| r.transport.shipped_bytes);
    let full_shipped = sum(&full_results, &|r| r.transport.shipped_bytes);
    println!(
        "  TodoMVC registry ({} entries, {} runs each): verdicts and state counts identical",
        entries.len(),
        tests
    );
    println!("    wall: delta {delta_wall:.2}s vs full {full_wall:.2}s");
    println!("    bytes shipped: delta {delta_shipped} vs full {full_shipped}");

    // BigTable: the large-DOM grid, both modes.
    let bt_spec =
        quickstrom::specstrom::load(quickstrom::specs::BIGTABLE).expect("bundled spec compiles");
    let bt_options = CheckOptions::default()
        .with_tests(tests)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(2026)
        .with_shrink(false)
        .with_jobs(jobs.max(1));
    let run_bt = |mode: SnapshotMode| {
        let config = mode.config();
        let started = std::time::Instant::now();
        let report = check_spec(&bt_spec, &bt_options, &move || {
            Box::new(WebExecutor::with_config(
                || BigTable::with_rows(250),
                config.clone(),
            ))
        })
        .expect("no protocol errors");
        (report, started.elapsed().as_secs_f64())
    };
    let (bt_delta, bt_delta_wall) = run_bt(SnapshotMode::Delta);
    let (bt_full, bt_full_wall) = run_bt(SnapshotMode::Full);
    assert_eq!(bt_delta, bt_full, "bigtable reports must be identical");
    let bt_delta_t = bt_delta.transport();
    let bt_full_t = bt_full.transport();
    println!("  BigTable (250 rows, {tests} runs): reports identical");
    println!("    wall: delta {bt_delta_wall:.2}s vs full {bt_full_wall:.2}s");
    println!(
        "    bytes shipped: delta {} vs full {} (ratio {:.3})",
        bt_delta_t.shipped_bytes,
        bt_full_t.shipped_bytes,
        bt_delta_t.delta_ratio()
    );

    if let Some(path) = json {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"delta_vs_full\",");
        let _ = writeln!(out, "  \"tests\": {tests},");
        let _ = writeln!(out, "  \"jobs\": {},", jobs.max(1));
        let _ = writeln!(out, "  \"workloads\": {{");
        let _ = writeln!(
            out,
            "    \"todomvc_registry\": {{\"identical\": true, \
             \"delta_wall_s\": {delta_wall:.4}, \"full_wall_s\": {full_wall:.4}, \
             \"delta_shipped_bytes\": {delta_shipped}, \
             \"full_shipped_bytes\": {full_shipped}}},"
        );
        let _ = writeln!(
            out,
            "    \"bigtable\": {{\"identical\": true, \
             \"delta_wall_s\": {bt_delta_wall:.4}, \"full_wall_s\": {bt_full_wall:.4}, \
             \"delta_shipped_bytes\": {}, \"full_shipped_bytes\": {}, \
             \"delta_ratio\": {:.4}}}",
            bt_delta_t.shipped_bytes,
            bt_full_t.shipped_bytes,
            bt_delta_t.delta_ratio()
        );
        let _ = writeln!(out, "  }}");
        out.push_str("}\n");
        std::fs::write(path, out).expect("write JSON");
        println!("wrote {path}");
    }
}

/// The coverage comparison: every strategy over the TodoMVC, BigTable
/// and Wizard workloads at an equal step budget, aggregated over a few
/// seeds. Reports distinct state fingerprints (the headline), distinct
/// transitions, and corpus usage, and writes the comparison JSON the CI
/// smoke uploads as `BENCH_coverage_compare.json`.
fn coverage_compare(tests: usize, jobs: usize, json: Option<&str>) {
    use quickstrom::quickstrom_apps::{BigTable, TodoMvc, Wizard};

    println!("═══ Coverage comparison: uniform vs least-tried vs novelty ═══");
    println!(
        "    ({tests} runs × 40 actions per seed, seeds 11/7/2026, equal budget \
         for every strategy)"
    );
    const SEEDS: [u64; 3] = [11, 7, 2026];
    struct Workload {
        name: &'static str,
        source: &'static str,
        factory: &'static (dyn Fn() -> Box<dyn Executor> + Sync),
    }
    let workloads = [
        Workload {
            name: "todomvc",
            source: quickstrom::specs::TODOMVC,
            factory: &|| Box::new(WebExecutor::new(TodoMvc::correct)),
        },
        Workload {
            name: "bigtable",
            source: quickstrom::specs::BIGTABLE,
            factory: &|| Box::new(WebExecutor::new(|| BigTable::with_rows(250))),
        },
        Workload {
            name: "wizard",
            source: quickstrom::specs::WIZARD,
            factory: &|| Box::new(WebExecutor::new(Wizard::new)),
        },
    ];

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"coverage_compare\",");
    let _ = writeln!(out, "  \"tests\": {tests},");
    let _ = writeln!(out, "  \"max_actions\": 40,");
    let _ = writeln!(out, "  \"seeds\": [11, 7, 2026],");
    let _ = writeln!(out, "  \"workloads\": {{");
    println!(
        "  {:>9}  {:>12}  {:>16}  {:>12}  {:>14}",
        "workload", "strategy", "distinct states", "transitions", "corpus replays"
    );
    for (w_index, workload) in workloads.iter().enumerate() {
        let spec = quickstrom::specstrom::load(workload.source).expect("bundled spec compiles");
        let run_total = |strategy: SelectionStrategy, fingerprint: FingerprintMode| {
            let mut total = CoverageStats::default();
            for seed in SEEDS {
                let options = CheckOptions::default()
                    .with_tests(tests)
                    .with_max_actions(40)
                    .with_default_demand(30)
                    .with_seed(seed)
                    .with_shrink(false)
                    .with_strategy(strategy)
                    .with_fingerprint(fingerprint)
                    .with_jobs(jobs.max(1));
                let report =
                    check_spec(&spec, &options, workload.factory).expect("no protocol errors");
                assert!(
                    report.passed(),
                    "{}: correct workload flagged under {strategy}: {report}",
                    workload.name
                );
                total.absorb(report.coverage());
            }
            total
        };
        let mut per_strategy = Vec::new();
        for strategy in SelectionStrategy::ALL {
            let total = run_total(strategy, FingerprintMode::Shape);
            println!(
                "  {:>9}  {:>12}  {:>16}  {:>12}  {:>14}",
                workload.name,
                strategy.name(),
                total.distinct_states,
                total.distinct_edges,
                total.corpus_replays
            );
            per_strategy.push((strategy, total));
        }
        // The spec-aware fingerprint column: the same uniform-vs-novelty
        // comparison, but with both the novelty signal and the coverage
        // accounting using the projection hash derived from the compiled
        // spec's static analysis (exact texts on atom-read fields,
        // nothing else) — the abstraction the properties actually
        // distinguish states by.
        let spec_uniform = run_total(SelectionStrategy::UniformRandom, FingerprintMode::SpecAware);
        let spec_novelty = run_total(SelectionStrategy::Novelty, FingerprintMode::SpecAware);
        for (label, total) in [
            ("uniform/spec", &spec_uniform),
            ("novelty/spec", &spec_novelty),
        ] {
            println!(
                "  {:>9}  {:>12}  {:>16}  {:>12}  {:>14}",
                workload.name,
                label,
                total.distinct_states,
                total.distinct_edges,
                total.corpus_replays
            );
        }
        let uniform = per_strategy[0].1.distinct_states;
        let novelty = per_strategy[2].1.distinct_states;
        #[allow(clippy::cast_precision_loss)]
        let gain = novelty as f64 / uniform.max(1) as f64;
        #[allow(clippy::cast_precision_loss)]
        let spec_gain =
            spec_novelty.distinct_states as f64 / spec_uniform.distinct_states.max(1) as f64;
        println!(
            "  {:>9}  novelty reaches {gain:.2}× the distinct fingerprints of uniform \
             (shape), {spec_gain:.2}× (spec-aware)",
            workload.name
        );
        let _ = writeln!(out, "    \"{}\": {{", workload.name);
        for (strategy, total) in &per_strategy {
            let _ = writeln!(
                out,
                "      \"{}\": {{\"distinct_states\": {}, \"distinct_edges\": {}, \
                 \"corpus_size\": {}, \"corpus_replays\": {}}},",
                strategy.name(),
                total.distinct_states,
                total.distinct_edges,
                total.corpus_size,
                total.corpus_replays,
            );
        }
        for (key, total) in [
            ("uniform_spec_aware", &spec_uniform),
            ("novelty_spec_aware", &spec_novelty),
        ] {
            let _ = writeln!(
                out,
                "      \"{key}\": {{\"distinct_states\": {}, \"distinct_edges\": {}, \
                 \"corpus_size\": {}, \"corpus_replays\": {}}},",
                total.distinct_states,
                total.distinct_edges,
                total.corpus_size,
                total.corpus_replays,
            );
        }
        let _ = writeln!(
            out,
            "      \"novelty_over_uniform\": {gain:.4},\n      \
             \"spec_novelty_over_uniform\": {spec_gain:.4}\n    }}{}",
            if w_index + 1 < workloads.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    println!(
        "reading: at the same budget, coverage-guided selection with corpus \
         replay-then-extend visits more distinct application states — the \
         exploration-engine headline (DESIGN.md, *Exploration engine*)."
    );
    if let Some(path) = json {
        std::fs::write(path, out).expect("write JSON");
        println!("wrote {path}");
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs the spec static analysis over every bundled specification and
/// reports its diagnostics with `file:line:col` positions. With
/// `deny_warnings` any finding makes the process exit non-zero — the CI
/// lint smoke. With `json` a machine-readable report is written.
fn lint_specs(json: Option<&str>, deny_warnings: bool) {
    use quickstrom::specstrom::{compile, line_col, parse_spec};

    println!("═══ Spec lint: static analysis diagnostics over the bundled specs ═══");
    let bundled = [
        ("specs/todomvc.strom", quickstrom::specs::TODOMVC),
        ("specs/egg_timer.strom", quickstrom::specs::EGG_TIMER),
        ("specs/counter.strom", quickstrom::specs::COUNTER),
        ("specs/menu.strom", quickstrom::specs::MENU),
        ("specs/bigtable.strom", quickstrom::specs::BIGTABLE),
        ("specs/wizard.strom", quickstrom::specs::WIZARD),
    ];
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"lint\",");
    let _ = writeln!(out, "  \"specs\": {{");
    let mut total = 0usize;
    for (i, (path, source)) in bundled.iter().enumerate() {
        let spec = parse_spec(source).expect("bundled spec parses");
        let compiled = compile(&spec).expect("bundled spec compiles");
        let diagnostics = quickstrom::specstrom::lint(&spec, &compiled);
        let _ = writeln!(out, "    \"{path}\": [");
        for (j, d) in diagnostics.iter().enumerate() {
            let (line, col) = line_col(source, d.span.start);
            println!("  {path}:{line}:{col}: warning[{}]: {}", d.code, d.message);
            let _ = writeln!(
                out,
                "      {{\"code\": \"{}\", \"line\": {line}, \"col\": {col}, \
                 \"message\": \"{}\"}}{}",
                d.code,
                json_escape(&d.message),
                if j + 1 < diagnostics.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "    ]{}", if i + 1 < bundled.len() { "," } else { "" });
        total += diagnostics.len();
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"total\": {total}");
    out.push_str("}\n");
    println!(
        "  {total} diagnostic(s) across {} bundled spec(s)",
        bundled.len()
    );
    if let Some(path) = json {
        std::fs::write(path, out).expect("write JSON");
        println!("wrote {path}");
    }
    if deny_warnings && total > 0 {
        eprintln!("--deny-warnings: failing on {total} diagnostic(s)");
        std::process::exit(1);
    }
}

/// The Figure 13 sweep: false-negative rate and running time vs subscript.
fn figure13(sessions: usize, runs: usize, csv: Option<&str>) {
    println!("═══ Figure 13: false negative rate and running time vs subscript ═══");
    println!("    ({sessions} sessions × {runs} runs per faulty implementation and subscript)");
    let subscripts = [10u32, 25, 50, 100, 200, 300, 400, 500];
    println!(
        "  {:>9}  {:>14}  {:>16}  {:>18}",
        "subscript", "false neg (%)", "passing wall (s)", "passing virt (ms)"
    );
    let mut rows = String::from("subscript,false_negative_pct,passing_wall_s,passing_virtual_ms\n");
    for &n in &subscripts {
        let point = figure13_point(n, sessions, runs);
        println!(
            "  {:>9}  {:>14.1}  {:>16.3}  {:>18.0}",
            point.subscript,
            point.false_negative_pct,
            point.passing_wall_s,
            point.passing_virtual_ms
        );
        let _ = writeln!(
            rows,
            "{},{:.2},{:.4},{:.0}",
            point.subscript,
            point.false_negative_pct,
            point.passing_wall_s,
            point.passing_virtual_ms
        );
    }
    println!(
        "expected shape (paper): time grows linearly with the subscript; accuracy\n\
         improves steeply up to ~100 and logarithmically after (diminishing returns)."
    );
    if let Some(path) = csv {
        std::fs::write(path, rows).expect("write CSV");
        println!("wrote {path}");
    }
}

/// Ablation A2: RV-LTL (all demands zero) vs QuickLTL demands on the §2.1
/// menu example — spurious counterexample rate on a *correct* application.
fn ablation_rvltl() {
    println!("═══ Ablation A2: RV-LTL (demand 0) vs QuickLTL demands ═══");
    println!("    (correct menu app; any reported failure is spurious)");
    let spec_with = |always_d: u32, event_d: u32| {
        format!(
            "let ~menuEnabled = `#menu`.enabled;\n\
             action open! = click!(`#menu`) when menuEnabled;\n\
             action wait! = noop! timeout 600;\n\
             action woke? = changed?(`#menu`);\n\
             let ~p = always[{always_d}] eventually[{event_d}] menuEnabled;\n\
             check p;"
        )
    };
    println!(
        "  {:>22}  {:>22}  {:>12}",
        "always subscript", "eventually subscript", "spurious (%)"
    );
    for (always_d, event_d) in [(0u32, 0u32), (10, 0), (0, 4), (10, 4), (30, 4)] {
        let source = spec_with(always_d, event_d);
        let spec = quickstrom::specstrom::load(&source).expect("spec compiles");
        let mut spurious = 0usize;
        let total = 40usize;
        for seed in 0..total {
            let report = check_spec(
                &spec,
                &CheckOptions::default()
                    .with_tests(2)
                    .with_max_actions(6)
                    .with_default_demand(0)
                    .with_seed(seed as u64)
                    .with_shrink(false),
                &|| Box::new(WebExecutor::new(|| MenuApp::new(500))),
            )
            .expect("no protocol errors");
            if !report.passed() {
                spurious += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * spurious as f64 / total as f64;
        println!("  {always_d:>22}  {event_d:>22}  {pct:>12.1}");
    }
    println!(
        "expected shape: demand 0 (RV-LTL) flags the correct app whenever a trace\n\
         ends inside the busy window; the eventually-demand eliminates this."
    );
}

/// Ablation A1: formula-size growth with and without the idempotence dedup
/// of the simplifier (the Roşu–Havelund blow-up of §2.3).
fn ablation_simplify() {
    use quickstrom::quickltl::{Evaluator, Formula, SimplifyMode};
    println!("═══ Ablation A1: simplification vs formula growth (§2.3) ═══");
    // □₀ (p → ◇₀ (q ∧ ◇₀ r)) over a trace where p holds but q, r never do:
    // every state spawns a new eventuality; without dedup they accumulate.
    let formula = Formula::always(
        0u32,
        Formula::atom('p').implies(Formula::eventually(
            0u32,
            Formula::atom('q').and(Formula::eventually(0u32, Formula::atom('r'))),
        )),
    );
    println!(
        "  {:>6}  {:>18}  {:>18}",
        "steps", "size (full)", "size (no dedup)"
    );
    for steps in [10usize, 50, 100, 200, 400] {
        let mut sizes = Vec::new();
        for mode in [SimplifyMode::Full, SimplifyMode::NoDedup] {
            let mut ev = Evaluator::with_mode(formula.clone(), mode);
            for _ in 0..steps {
                ev.observe::<std::convert::Infallible>(&mut |p| Ok(*p == 'p'))
                    .expect("infallible");
            }
            sizes.push(ev.residual().map_or(0, Formula::size));
        }
        println!("  {:>6}  {:>18}  {:>18}", steps, sizes[0], sizes[1]);
    }
    println!(
        "expected shape: with the paper's simplification the residual stays\n\
         constant-size; without idempotence dedup it grows with the trace —\n\
         the blow-up Roşu and Havelund warn about, avoided in practice (§2.3)."
    );
}

/// Ablation A4 (extension, §5.1 future work): uniform-random vs
/// least-tried action selection — mean runs-to-first-failure on the
/// paper's "involved" faults.
fn ablation_strategy() {
    use quickstrom::quickstrom_apps::todomvc::{Fault, TodoMvc};

    println!("═══ Ablation A4: action selection strategy (§5.1 future work) ═══");
    println!("    (mean runs until first failure over 20 seeds; cap 200 runs)");
    let spec = quickstrom::specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    println!(
        "  {:>28}  {:>16}  {:>16}",
        "fault", "uniform (runs)", "least-tried (runs)"
    );
    for fault in [
        Fault::ToggleAllIgnoresHidden,
        Fault::EmptyEditZombie,
        Fault::PendingCleared,
    ] {
        let mut means = Vec::new();
        for strategy in [
            SelectionStrategy::UniformRandom,
            SelectionStrategy::LeastTried,
        ] {
            let mut total_runs = 0usize;
            let seeds = 20u64;
            for seed in 0..seeds {
                let options = CheckOptions::default()
                    .with_tests(200)
                    .with_max_actions(60)
                    .with_default_demand(50)
                    .with_seed(seed * 7919)
                    .with_shrink(false)
                    .with_strategy(strategy);
                let report = check_spec(&spec, &options, &|| {
                    Box::new(WebExecutor::new(move || TodoMvc::with_faults([fault])))
                })
                .expect("no protocol errors");
                total_runs += report.properties[0].runs.len();
            }
            #[allow(clippy::cast_precision_loss)]
            means.push(total_runs as f64 / seeds as f64);
        }
        println!(
            "  {:>28}  {:>16.1}  {:>16.1}",
            format!("{} ({})", fault.number(), short_name(fault)),
            means[0],
            means[1]
        );
    }
    println!(
        "reading: fewer runs = the bug is found sooner. Least-tried keeps rare\n\
         actions (toggle-all, edit commits) in rotation instead of drowning them\n\
         in input typing — the \"more targeted\" selection §5.1 anticipates."
    );
}

fn short_name(fault: quickstrom::quickstrom_apps::todomvc::Fault) -> &'static str {
    use quickstrom::quickstrom_apps::todomvc::Fault;
    match fault {
        Fault::ToggleAllIgnoresHidden => "toggle-all vs filters",
        Fault::EmptyEditZombie => "empty-edit zombie",
        Fault::PendingCleared => "pending cleared",
        _ => "other",
    }
}
