//! The pipelined-runtime differential suite: `--pipeline on` ≡ `off`.
//!
//! The two-stage pipelined session runtime (`CheckOptions::pipeline`, see
//! DESIGN.md's *Pipelined runtime*) overlaps the executor/driver stage
//! with the formula evaluator, speculating up to `pipeline_depth` states
//! past the evaluator's position and discarding the speculative tail when
//! a verdict lands. Like every engine optimisation in this repository,
//! it must be *observably invisible*: verdicts, runs, recorded traces,
//! state/action totals, shrunk counterexamples and the atom/automaton
//! counters are bit-identical to the sequential engine, on every
//! workload, at every speculation depth, for every multiplex width.
//! [`Report`]'s `PartialEq` compares everything except wall-clock,
//! transport and coverage accounting — transport legitimately differs
//! under pipelining (speculative messages still cross the wire), which is
//! precisely why it is excluded.
//!
//! Coverage mirrors the atom-memo suite: every bundled specification
//! against its real application, a faulty TodoMVC entry with the shrinker
//! enabled, a speculation-truncation pin at depths 1/4/64, multiplexed
//! scheduling at several widths, and the whole 43-entry registry crossed
//! over jobs 1/2 × multiplex 1/3 × delta/full snapshots ×
//! automaton/stepper evaluation × the three atom-cache modes.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{
    registry, BigTable, Counter, EggTimer, MenuApp, TodoMvc, Wizard,
};
use quickstrom::specstrom;
use quickstrom::webdom::App;
use quickstrom_bench::{check_entry_mode, SnapshotMode};

/// Checks `source` against `app` with the pipelined runtime and with the
/// sequential engine, asserts the reports are bit-identical, and asserts
/// the evaluation counters (which the pipelined evaluator stage must
/// reproduce exactly) match too.
fn assert_pipeline_invisible<A, F>(source: &str, make_app: F, options: &CheckOptions) -> Report
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let run = |pipeline: PipelineMode| {
        // A fresh compiled spec per engine: the property-level atom memo
        // and the automaton transition table hang off the spec and stay
        // warm across checks, so sharing one spec would make the second
        // engine's counters incomparably cheaper regardless of pipeline.
        let spec = specstrom::load(source).expect("bundled spec compiles");
        let make_app = make_app.clone();
        let options = options.clone().with_pipeline(pipeline);
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(make_app.clone()))
        })
        .expect("no protocol errors")
    };
    let pipelined = run(PipelineMode::On);
    let sequential = run(PipelineMode::Off);
    assert_eq!(
        pipelined, sequential,
        "pipelined vs sequential reports diverged"
    );
    let p = pipelined.timings();
    let s = sequential.timings();
    // The evaluator stage replays the sequential engine exactly, so every
    // evaluation counter — not just the verdicts — must agree.
    assert_eq!(p.atoms_total, s.atoms_total, "atom demand diverged");
    assert_eq!(
        p.atoms_reevaluated, s.atoms_reevaluated,
        "atom re-evaluation diverged"
    );
    assert_eq!(p.atom_memo_hits, s.atom_memo_hits, "memo hits diverged");
    assert_eq!(
        p.atom_memo_misses, s.atom_memo_misses,
        "memo misses diverged"
    );
    assert_eq!(p.ltl_table_hits, s.ltl_table_hits, "table hits diverged");
    // The sequential engine reports no pipeline; the pipelined engine
    // echoes its configured depth.
    assert_eq!(s.pipeline_depth, 0, "sequential engine has no pipeline");
    assert_eq!(s.speculative_states_discarded, 0);
    assert_eq!(s.executor_stall_s, 0.0);
    assert_eq!(s.evaluator_stall_s, 0.0);
    assert_eq!(
        p.pipeline_depth,
        options.pipeline_depth.max(1) as u64,
        "pipelined engine must echo its speculation bound"
    );
    pipelined
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(8)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(97)
        .with_shrink(false)
}

#[test]
fn counter_spec_verdicts_pipeline_invariant() {
    assert_pipeline_invisible(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_spec_verdicts_pipeline_invariant() {
    assert_pipeline_invisible(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_spec_verdicts_pipeline_invariant() {
    assert_pipeline_invisible(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn todomvc_spec_verdicts_pipeline_invariant() {
    let entry = registry::by_name("vue").expect("registry entry");
    assert_pipeline_invisible(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
}

#[test]
fn bigtable_spec_verdicts_pipeline_invariant() {
    let report = assert_pipeline_invisible(
        quickstrom::specs::BIGTABLE,
        || BigTable::with_rows(120),
        &quick_options(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn wizard_spec_verdicts_pipeline_invariant() {
    let report =
        assert_pipeline_invisible(quickstrom::specs::WIZARD, Wizard::new, &quick_options());
    assert!(report.passed(), "{report}");
}

/// The truncation pin: the speculation window bounds how far the driver
/// can run past the canonical stop point, so the *shape* of speculation
/// differs wildly between depth 1 (near-lockstep), 4 and 64 (the driver
/// can race a whole run ahead) — but every report must be identical to
/// the sequential engine's, because the evaluator discards the
/// speculative tail unprocessed.
#[test]
fn speculation_depth_never_leaks_into_reports() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let entry = registry::by_name("vue").expect("registry entry");
    let base = quick_options().with_default_demand(40).with_max_actions(50);
    let run = |options: CheckOptions| {
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(move || entry.build()))
        })
        .expect("no protocol errors")
    };
    let sequential = run(base.clone().with_pipeline(PipelineMode::Off));
    for depth in [1usize, 4, 64] {
        let pipelined = run(base.clone().with_pipeline_depth(depth));
        assert_eq!(
            pipelined, sequential,
            "pipeline depth {depth} changed the report"
        );
        assert_eq!(
            pipelined.timings().pipeline_depth,
            depth as u64,
            "depth {depth} not echoed"
        );
    }
}

/// Multiplexed scheduling: several in-flight sessions per worker, with
/// and without extra workers. Slot-ordered retirement keeps the merged
/// report bit-identical to the sequential engine for every (jobs,
/// multiplex) combination.
#[test]
fn multiplexed_sessions_match_sequential_reports() {
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("spec compiles");
    let run = |options: CheckOptions| {
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(Counter::new))
        })
        .expect("no protocol errors")
    };
    let sequential = run(quick_options().with_pipeline(PipelineMode::Off));
    for (jobs, multiplex) in [(1usize, 4usize), (2, 2), (2, 4), (4, 1)] {
        let pipelined = run(quick_options().with_jobs(jobs).with_multiplex(multiplex));
        assert_eq!(
            pipelined, sequential,
            "jobs {jobs} × multiplex {multiplex} diverged from sequential"
        );
    }
}

/// The faulty-entry case, shrinker on: the counterexample search runs on
/// the pipelined runtime (shrink replays themselves always run on the
/// sequential engine — they are scripted, with nothing to overlap), and
/// the shrunk script, per-state trace and verdict must match the
/// sequential engine exactly.
#[test]
fn faulty_entry_shrinks_identically_across_pipeline_modes() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true);
    let run = |pipeline: PipelineMode| {
        let options = options.clone().with_pipeline(pipeline);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared])
            }))
        })
        .expect("no protocol errors")
    };
    let pipelined = run(PipelineMode::On);
    let sequential = run(PipelineMode::Off);
    assert_eq!(pipelined, sequential);
    assert!(!pipelined.passed(), "the faulty app must fail");
    let cx_p = pipelined.properties[0].counterexample().expect("cx");
    let cx_s = sequential.properties[0].counterexample().expect("cx");
    assert!(cx_p.shrunk, "the shrinker ran");
    assert_eq!(cx_p.script, cx_s.script);
    assert_eq!(cx_p.trace, cx_s.trace);
    assert_eq!(cx_p.verdict, cx_s.verdict);
}

/// The whole 43-entry registry, crossed over the checker's runtime knobs:
/// entry `i` runs under combination `i % 24` of jobs 1/2 × multiplex 1/3
/// × delta/full snapshots × automaton/stepper evaluation ×
/// value/footprint/off atom caching, pipelined and sequential, and the
/// two engines must agree on verdicts, state counts and atom demand for
/// every entry.
#[test]
fn registry_sweep_agrees_across_pipeline_jobs_snapshots_engines_and_caches() {
    let base = CheckOptions::default()
        .with_tests(3)
        .with_max_actions(25)
        .with_default_demand(25)
        .with_seed(11)
        .with_shrink(false);
    let mut speculation_discards = 0u64;
    for (i, entry) in quickstrom::quickstrom_apps::REGISTRY.iter().enumerate() {
        let jobs = 1 + (i % 2);
        let multiplex = if (i / 2) % 2 == 0 { 1 } else { 3 };
        let snapshot = if (i / 4) % 2 == 0 {
            SnapshotMode::Delta
        } else {
            SnapshotMode::Full
        };
        let eval = if (i / 8) % 2 == 0 {
            EvalMode::Automaton
        } else {
            EvalMode::Stepper
        };
        let cache = [
            AtomCacheMode::Value,
            AtomCacheMode::Footprint,
            AtomCacheMode::Off,
        ][(i / 16) % 3];
        let options = base
            .clone()
            .with_jobs(jobs)
            .with_multiplex(multiplex)
            .with_eval_mode(eval)
            .with_atom_cache(cache);
        let pipelined = check_entry_mode(
            entry,
            &options.clone().with_pipeline(PipelineMode::On),
            snapshot,
        );
        let sequential =
            check_entry_mode(entry, &options.with_pipeline(PipelineMode::Off), snapshot);
        assert_eq!(
            (pipelined.passed, pipelined.states),
            (sequential.passed, sequential.states),
            "{} (jobs {jobs}, multiplex {multiplex}, {snapshot:?}, {eval:?}, \
             {cache:?}) diverged between pipelined and sequential",
            entry.name
        );
        // Atom demand is cache-warmth-invariant (the registry shares one
        // compiled spec, so memo/table *hit* counts are not comparable
        // between the two calls — demand is).
        assert_eq!(
            pipelined.atoms_total, sequential.atoms_total,
            "{}: the pipelined evaluator requested a different atom set",
            entry.name
        );
        assert_eq!(
            sequential.pipeline_depth, 0,
            "{}: sequential engine reported a pipeline",
            entry.name
        );
        speculation_discards += pipelined.speculative_states_discarded;
    }
    // The sweep includes failing entries whose verdicts land mid-run, so
    // speculation must actually have been truncated somewhere (otherwise
    // the pin above is vacuous).
    assert!(
        speculation_discards > 0,
        "no speculative states were ever discarded across the registry"
    );
}

/// The step-memo differential: `--step-memo on` ≡ `off`.
///
/// The whole-transition step memo (`CheckOptions::step_memo`) answers
/// automaton steps from a `(state, bindings signature, state signature)`
/// cache, skipping atom expansion, observation and the table step — but
/// replays the exact expansion-count deltas the full step would have
/// produced. So verdicts, traces and every atom counter must match an
/// unmemoized engine bit-for-bit. `ltl_table_hits` is the one deliberate
/// exception — a replay counts as a hit even when the unmemoized step
/// would have re-interned a structurally novel observation of the same
/// transition (see `PhaseTimings::step_memo_hits`) — so it is asserted
/// close, not equal.
fn assert_step_memo_invisible<A, F>(
    source: &str,
    make_app: F,
    options: &CheckOptions,
) -> (Report, Report)
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let run = |step_memo: bool| {
        // A fresh spec per engine, as above: the memo hangs off the spec.
        let spec = specstrom::load(source).expect("bundled spec compiles");
        let make_app = make_app.clone();
        let options = options.clone().with_step_memo(step_memo);
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(make_app.clone()))
        })
        .expect("no protocol errors")
    };
    let memoized = run(true);
    let unmemoized = run(false);
    assert_eq!(
        memoized, unmemoized,
        "step-memo vs unmemoized reports diverged"
    );
    let m = memoized.timings();
    let u = unmemoized.timings();
    assert_eq!(u.step_memo_hits, 0, "unmemoized engine reported memo hits");
    assert_eq!(m.atoms_total, u.atoms_total, "atom demand diverged");
    assert_eq!(
        m.atoms_reevaluated, u.atoms_reevaluated,
        "atom re-evaluation diverged"
    );
    assert_eq!(m.atom_memo_hits, u.atom_memo_hits, "memo hits diverged");
    assert_eq!(
        m.atom_memo_misses, u.atom_memo_misses,
        "memo misses diverged"
    );
    assert_eq!(m.ltl_states, u.ltl_states, "interned state count diverged");
    // Replays may claim a sliver more table hits than the unmemoized
    // engine records (never fewer, and never more than the replay count).
    assert!(
        m.ltl_table_hits >= u.ltl_table_hits
            && m.ltl_table_hits - u.ltl_table_hits <= m.step_memo_hits,
        "table hits out of the documented envelope: memoized {} vs \
         unmemoized {} with {} replays",
        m.ltl_table_hits,
        u.ltl_table_hits,
        m.step_memo_hits,
    );
    (memoized, unmemoized)
}

#[test]
fn todomvc_step_memo_is_invisible() {
    let entry = registry::by_name("vue").expect("registry entry");
    let (memoized, _) = assert_step_memo_invisible(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
    assert!(
        memoized.timings().step_memo_hits > 0,
        "the step memo never fired"
    );
}

#[test]
fn counter_step_memo_is_invisible_with_atom_cache_off() {
    let (memoized, _) = assert_step_memo_invisible(
        quickstrom::specs::COUNTER,
        Counter::new,
        &quick_options().with_atom_cache(AtomCacheMode::Off),
    );
    assert!(
        memoized.timings().step_memo_hits > 0,
        "the step memo never fired"
    );
}

/// Shrinking on the faulty entry, step memo on vs off: replay runs warm
/// the shared memo but their counters are excluded
/// (`PhaseTimings::reset_for_replay`), and the shrunk script must come
/// out identical either way.
#[test]
fn faulty_entry_shrinks_identically_across_step_memo_modes() {
    let (memoized, unmemoized) = assert_step_memo_invisible(
        quickstrom::specs::TODOMVC,
        || TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared]),
        &CheckOptions::default()
            .with_tests(30)
            .with_max_actions(40)
            .with_default_demand(30)
            .with_seed(20220322)
            .with_shrink(true),
    );
    assert!(!memoized.passed(), "the faulty app must fail");
    let cx_m = memoized.properties[0].counterexample().expect("cx");
    let cx_u = unmemoized.properties[0].counterexample().expect("cx");
    assert!(cx_m.shrunk, "the shrinker ran");
    assert_eq!(cx_m.script, cx_u.script);
    assert_eq!(cx_m.trace, cx_u.trace);
    assert_eq!(cx_m.verdict, cx_u.verdict);
}

/// The footprint cache opts out of the step memo implicitly (its served
/// expansions are footprint-revalidated, not value-keyed, so no state
/// signature exists to key a transition by) — the switch must be a no-op
/// there rather than a footgun.
#[test]
fn footprint_cache_never_engages_the_step_memo() {
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("spec compiles");
    let options = quick_options()
        .with_atom_cache(AtomCacheMode::Footprint)
        .with_step_memo(true);
    let report = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(Counter::new))
    })
    .expect("no protocol errors");
    assert_eq!(report.timings().step_memo_hits, 0);
}
