//! The atom-masked ≡ unmasked differential suite.
//!
//! Atom masking (`CheckOptions::mask_atoms`) lets the checker reuse an
//! atom's previous expansion whenever a snapshot delta provably could not
//! have changed anything the atom reads — the static footprint from
//! `specstrom::analysis`. The optimisation must be *observably
//! invisible*: verdicts, runs, recorded traces and shrunk
//! counterexamples are bit-identical with masking on and off, on every
//! workload. [`Report`]'s `PartialEq` compares everything except
//! wall-clock, transport and coverage accounting, which is precisely the
//! invariant stated here.
//!
//! Coverage mirrors the delta-mode suite: every bundled specification
//! against its real application, a faulty TodoMVC entry with the
//! shrinker enabled (masked replay drives shrinking too), and the whole
//! 43-entry registry.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{
    registry, BigTable, Counter, EggTimer, MenuApp, TodoMvc, Wizard,
};
use quickstrom::specstrom;
use quickstrom::webdom::App;
use quickstrom_bench::{check_entry_mode, SnapshotMode};

/// Checks `spec` against `app` with atom masking on and off and asserts
/// the reports are bit-identical (verdicts, runs, traces, totals).
fn assert_masking_invisible<A, F>(source: &str, make_app: F, options: &CheckOptions) -> Report
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let spec = specstrom::load(source).expect("bundled spec compiles");
    let run = |mask: bool| {
        let make_app = make_app.clone();
        let options = options.clone().with_mask_atoms(mask);
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(make_app.clone()))
        })
        .expect("no protocol errors")
    };
    let masked = run(true);
    let unmasked = run(false);
    assert_eq!(masked, unmasked, "atom masking changed the report");
    // Masking actually reused expansions (not a vacuous comparison):
    // with it off every requested atom re-evaluates, with it on at least
    // one delta step must have skipped at least one atom.
    let m = masked.timings();
    let u = unmasked.timings();
    assert_eq!(u.atoms_total, u.atoms_reevaluated, "unmasked must not skip");
    assert!(
        m.atoms_reevaluated < m.atoms_total,
        "masking never skipped an atom ({} of {} re-evaluated)",
        m.atoms_reevaluated,
        m.atoms_total,
    );
    masked
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(8)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(97)
        .with_shrink(false)
}

#[test]
fn counter_spec_verdicts_mask_invariant() {
    assert_masking_invisible(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_spec_verdicts_mask_invariant() {
    assert_masking_invisible(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_spec_verdicts_mask_invariant() {
    assert_masking_invisible(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn todomvc_spec_verdicts_mask_invariant() {
    let entry = registry::by_name("vue").expect("registry entry");
    assert_masking_invisible(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
}

#[test]
fn bigtable_spec_verdicts_mask_invariant() {
    let report = assert_masking_invisible(
        quickstrom::specs::BIGTABLE,
        || BigTable::with_rows(120),
        &quick_options(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn wizard_spec_verdicts_mask_invariant() {
    let report = assert_masking_invisible(quickstrom::specs::WIZARD, Wizard::new, &quick_options());
    assert!(report.passed(), "{report}");
}

/// The spec-aware fingerprint changes only the coverage abstraction (and
/// through it the novelty strategy's guidance); under the uniform
/// strategy — which never consults fingerprints for selection — verdicts
/// and traces must be identical to the shape fingerprint.
#[test]
fn spec_aware_fingerprint_is_verdict_invariant_under_uniform() {
    let spec = specstrom::load(quickstrom::specs::WIZARD).expect("spec compiles");
    let run = |fingerprint: FingerprintMode| {
        let options = quick_options().with_fingerprint(fingerprint);
        check_spec(&spec, &options, &|| Box::new(WebExecutor::new(Wizard::new)))
            .expect("no protocol errors")
    };
    let shape = run(FingerprintMode::Shape);
    let aware = run(FingerprintMode::SpecAware);
    assert_eq!(shape, aware, "fingerprint abstraction changed verdicts");
}

/// The faulty-entry case, shrinker on: counterexample search and the
/// scripted shrink replays run with the atom cache active, and must
/// match unmasked evaluation exactly — including the `shrunk` flag and
/// the per-state trace.
#[test]
fn faulty_entry_shrinks_identically_with_masking() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true);
    let run = |mask: bool| {
        let options = options.clone().with_mask_atoms(mask);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared])
            }))
        })
        .expect("no protocol errors")
    };
    let masked = run(true);
    let unmasked = run(false);
    assert_eq!(masked, unmasked);
    assert!(!masked.passed(), "the faulty app must fail");
    let cx_masked = masked.properties[0].counterexample().expect("cx");
    let cx_unmasked = unmasked.properties[0].counterexample().expect("cx");
    assert!(cx_masked.shrunk, "the shrinker ran");
    assert_eq!(cx_masked.script, cx_unmasked.script);
    assert_eq!(cx_masked.trace, cx_unmasked.trace);
    assert_eq!(cx_masked.verdict, cx_unmasked.verdict);
}

/// The whole 43-entry registry: per-entry verdicts and state counts are
/// independent of atom masking, and masking skips real work overall.
#[test]
fn registry_sweep_agrees_with_and_without_masks() {
    let options = CheckOptions::default()
        .with_tests(4)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(7)
        .with_shrink(false);
    let unmasked_options = options.clone().with_mask_atoms(false);
    let mut skipped_total = 0u64;
    for entry in quickstrom::quickstrom_apps::REGISTRY {
        let masked = check_entry_mode(entry, &options, SnapshotMode::Delta);
        let unmasked = check_entry_mode(entry, &unmasked_options, SnapshotMode::Delta);
        assert_eq!(
            (masked.passed, masked.states),
            (unmasked.passed, unmasked.states),
            "{} diverged between masked and unmasked evaluation",
            entry.name
        );
        assert_eq!(
            masked.atoms_total, unmasked.atoms_total,
            "{}: the evaluator requested a different atom set",
            entry.name
        );
        skipped_total += masked.atoms_total - masked.atoms_reevaluated;
    }
    assert!(skipped_total > 0, "masking never skipped an atom");
}
