//! The automaton ≡ stepper differential suite.
//!
//! `EvalMode::Automaton` progresses formulae through a memoized
//! transition table (`quickltl::TransitionTable`) instead of re-running
//! unroll → simplify → step per state. The optimisation must be
//! *observably invisible*: verdicts, runs, recorded traces and shrunk
//! counterexamples are bit-identical in both modes, on every workload,
//! crossed with worker counts and snapshot-shipping modes. [`Report`]'s
//! `PartialEq` compares everything except wall-clock, transport and
//! coverage accounting, which is precisely the invariant stated here.
//!
//! Coverage mirrors the masking suite: every bundled specification
//! against its real application, a faulty TodoMVC entry with the
//! shrinker enabled (the automaton drives shrink replays too), the whole
//! 43-entry registry crossed with `jobs` 1/2 and delta/full snapshots,
//! the stepper-fallback path under a deliberately tiny state cap, and
//! the shrink-replay counter-reset regression.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{
    registry, BigTable, Counter, EggTimer, MenuApp, TodoMvc, Wizard,
};
use quickstrom::specstrom;
use quickstrom::webdom::App;
use quickstrom_bench::{check_entry_mode, SnapshotMode};

/// Checks `spec` against `app` in both evaluation modes and asserts the
/// reports are bit-identical (verdicts, runs, traces, totals).
fn assert_automaton_invisible<A, F>(source: &str, make_app: F, options: &CheckOptions) -> Report
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let spec = specstrom::load(source).expect("bundled spec compiles");
    let run = |mode: EvalMode| {
        let make_app = make_app.clone();
        let options = options.clone().with_eval_mode(mode);
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(make_app.clone()))
        })
        .expect("no protocol errors")
    };
    let automaton = run(EvalMode::Automaton);
    let stepper = run(EvalMode::Stepper);
    assert_eq!(automaton, stepper, "evaluation mode changed the report");
    // The table actually ran (not a vacuous comparison): the stepper must
    // report no automaton activity, the automaton must have interned
    // residuals — and, wherever a property executed more than one run,
    // served lookups: later runs re-walk the residual prefix the first
    // run interned. (A single run rarely hits its own table: demand
    // subscripts decrement per state, so each step usually reaches a
    // structurally new residual.)
    let a = automaton.timings();
    let s = stepper.timings();
    assert_eq!((s.ltl_states, s.ltl_table_hits), (0, 0), "stepper counted");
    assert!(a.ltl_states > 0, "no residual states interned");
    if automaton.properties.iter().any(|p| p.runs.len() > 1) {
        assert!(a.ltl_table_hits > 0, "no progression step hit the table");
    }
    automaton
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(8)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(97)
        .with_shrink(false)
}

#[test]
fn counter_spec_verdicts_eval_mode_invariant() {
    assert_automaton_invisible(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_spec_verdicts_eval_mode_invariant() {
    assert_automaton_invisible(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_spec_verdicts_eval_mode_invariant() {
    assert_automaton_invisible(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn todomvc_spec_verdicts_eval_mode_invariant() {
    let entry = registry::by_name("vue").expect("registry entry");
    assert_automaton_invisible(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
}

#[test]
fn bigtable_spec_verdicts_eval_mode_invariant() {
    let report = assert_automaton_invisible(
        quickstrom::specs::BIGTABLE,
        || BigTable::with_rows(120),
        &quick_options(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn wizard_spec_verdicts_eval_mode_invariant() {
    let report =
        assert_automaton_invisible(quickstrom::specs::WIZARD, Wizard::new, &quick_options());
    assert!(report.passed(), "{report}");
}

/// The faulty-entry case, shrinker on: counterexample search and the
/// scripted shrink replays step the automaton too, and must match
/// stepper evaluation exactly — including the `shrunk` flag and the
/// per-state trace.
#[test]
fn faulty_entry_shrinks_identically_across_eval_modes() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true);
    let run = |mode: EvalMode| {
        let options = options.clone().with_eval_mode(mode);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared])
            }))
        })
        .expect("no protocol errors")
    };
    let automaton = run(EvalMode::Automaton);
    let stepper = run(EvalMode::Stepper);
    assert_eq!(automaton, stepper);
    assert!(!automaton.passed(), "the faulty app must fail");
    let cx_automaton = automaton.properties[0].counterexample().expect("cx");
    let cx_stepper = stepper.properties[0].counterexample().expect("cx");
    assert!(cx_automaton.shrunk, "the shrinker ran");
    assert_eq!(cx_automaton.script, cx_stepper.script);
    assert_eq!(cx_automaton.trace, cx_stepper.trace);
    assert_eq!(cx_automaton.verdict, cx_stepper.verdict);
}

/// The whole 43-entry registry, crossed over evaluation mode × worker
/// count × snapshot-shipping mode: per-entry verdicts and state counts
/// are identical in all eight combinations, and the automaton served
/// real lookups overall.
#[test]
fn registry_sweep_agrees_across_eval_modes_jobs_and_snapshots() {
    let base = CheckOptions::default()
        .with_tests(4)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(7)
        .with_shrink(false);
    let mut hits_total = 0u64;
    for entry in quickstrom::quickstrom_apps::REGISTRY {
        let mut baseline = None;
        for jobs in [1usize, 2] {
            for snapshots in [SnapshotMode::Delta, SnapshotMode::Full] {
                for eval in [EvalMode::Automaton, EvalMode::Stepper] {
                    let options = base.clone().with_jobs(jobs).with_eval_mode(eval);
                    let result = check_entry_mode(entry, &options, snapshots);
                    if eval == EvalMode::Automaton {
                        hits_total += result.ltl_table_hits;
                    } else {
                        assert_eq!(
                            (result.ltl_states, result.ltl_table_hits),
                            (0, 0),
                            "{}: the stepper touched the automaton counters",
                            entry.name
                        );
                    }
                    let key = (result.passed, result.states);
                    match baseline {
                        None => baseline = Some(key),
                        Some(expected) => assert_eq!(
                            key, expected,
                            "{} diverged under jobs={jobs}, {snapshots:?}, {eval}",
                            entry.name
                        ),
                    }
                }
            }
        }
    }
    assert!(hits_total > 0, "the table never answered a step by lookup");
}

/// The stepper-fallback path: a state cap small enough that every run
/// blows it mid-trace, forcing the automaton to reconstitute the
/// concrete residual and hand the run to the stepper. Verdicts, traces
/// and totals stay pinned to both the uncapped automaton and the plain
/// stepper, and the table respects the cap.
#[test]
fn fallback_at_tiny_state_cap_is_verdict_invariant() {
    let entry = registry::by_name("vue").expect("registry entry");
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = quick_options().with_default_demand(40).with_max_actions(50);
    let run = |options: CheckOptions| {
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(|| entry.build()))
        })
        .expect("no protocol errors")
    };
    let cap = 2;
    let capped = run(options
        .clone()
        .with_eval_mode(EvalMode::Automaton)
        .with_automaton_state_cap(cap));
    let uncapped = run(options.clone().with_eval_mode(EvalMode::Automaton));
    let stepper = run(options.with_eval_mode(EvalMode::Stepper));
    assert_eq!(capped, uncapped, "the fallback changed the report");
    assert_eq!(capped, stepper, "the fallback diverged from the stepper");
    let t = capped.timings();
    assert!(
        t.ltl_states <= cap as u64,
        "the capped table interned {} states over the cap of {cap}",
        t.ltl_states
    );
    // The uncapped automaton needs more residuals than the cap allows —
    // i.e. the cap genuinely forced the fallback path.
    assert!(
        uncapped.timings().ltl_states > cap as u64,
        "the workload never exceeded the cap; the fallback was not exercised"
    );
}

/// Regression: shrink replays must not inflate the per-property
/// evaluation counters. The search phase is seed-identical with
/// shrinking on and off, and replay counters are excluded from the
/// session totals, so the reported counters must agree exactly — while
/// the shrinker demonstrably ran.
#[test]
fn shrink_replays_do_not_inflate_eval_counters() {
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322);
    let run = |shrink: bool| {
        // A fresh spec per run: the transition table hangs off the
        // compiled spec, so sharing one instance would warm the second
        // check's cache and make the hit counter order-dependent.
        let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
        let options = options.clone().with_shrink(shrink);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared])
            }))
        })
        .expect("no protocol errors")
    };
    let shrunk = run(true);
    let unshrunk = run(false);
    assert!(
        shrunk.properties[0].counterexample().expect("cx").shrunk,
        "the shrinker ran"
    );
    let s = shrunk.timings();
    let u = unshrunk.timings();
    assert_eq!(s.atoms_total, u.atoms_total, "shrink inflated atoms_total");
    assert_eq!(
        s.atoms_reevaluated, u.atoms_reevaluated,
        "shrink inflated atoms_reevaluated"
    );
    assert_eq!(
        s.ltl_table_hits, u.ltl_table_hits,
        "shrink inflated ltl_table_hits"
    );
}
