//! The determinism invariant of the parallel runtime: `jobs = N` produces
//! a [`Report`] *identical* to `jobs = 1` — same verdicts, same
//! counterexample scripts and traces, same state/action totals — for both
//! passing and failing registry entries. See DESIGN.md, *Parallel
//! runtime*.
//!
//! These tests are tier-1: they gate the whole sharded check runtime. If
//! one fails, some run observed state that depended on worker count or
//! completion order.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry;
use quickstrom_bench::sweep_entries;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(24)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
}

fn report_for(name: &str, jobs: usize) -> Report {
    let entry = registry::by_name(name).unwrap_or_else(|| panic!("unknown entry {name}"));
    let spec = quickstrom::specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    check_spec(&spec, &options().with_jobs(jobs), &|| {
        Box::new(WebExecutor::new(|| entry.build()))
    })
    .expect("no protocol errors")
}

/// A passing entry: every run executes, so this exercises full-fan-out
/// merging with no cancellation.
#[test]
fn passing_entry_report_is_identical_across_job_counts() {
    let sequential = report_for("vue", 1);
    assert!(sequential.passed(), "{sequential}");
    for jobs in [2, 4, 7] {
        let parallel = report_for("vue", jobs);
        assert_eq!(
            sequential, parallel,
            "jobs={jobs} diverged from the sequential report"
        );
    }
}

/// A failing entry: exercises stop-at-first-failure cancellation — the
/// parallel run must report the counterexample of the *earliest* failing
/// run index (with the identical shrunk script and trace), not whichever
/// worker finished first.
#[test]
fn failing_entry_report_is_identical_across_job_counts() {
    let sequential = report_for("elm", 1);
    assert!(!sequential.passed(), "elm should fail: {sequential}");
    let cx_seq = sequential.properties[0]
        .counterexample()
        .expect("counterexample");
    for jobs in [2, 4] {
        let parallel = report_for("elm", jobs);
        assert_eq!(
            sequential, parallel,
            "jobs={jobs} diverged from the sequential report"
        );
        let cx_par = parallel.properties[0]
            .counterexample()
            .expect("counterexample");
        assert_eq!(cx_seq.script, cx_par.script, "jobs={jobs} script differs");
        assert_eq!(cx_seq.trace, cx_par.trace, "jobs={jobs} trace differs");
    }
}

/// The outer fan-out (registry entries): every verdict and state count
/// matches the sequential sweep; only wall-clock may differ.
#[test]
fn entry_sweep_is_identical_across_job_counts() {
    let entries: Vec<_> = ["vue", "elm", "react", "jquery", "backbone"]
        .iter()
        .map(|n| registry::by_name(n).expect("registry name"))
        .collect();
    let quick = options().with_tests(10).with_shrink(false);
    let sequential = sweep_entries(&entries, &quick, 1);
    for jobs in [2, 4] {
        let parallel = sweep_entries(&entries, &quick, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "jobs={jobs} order differs");
            assert_eq!(
                s.passed, p.passed,
                "jobs={jobs}: {} verdict differs",
                s.name
            );
            assert_eq!(
                s.states, p.states,
                "jobs={jobs}: {} state count differs",
                s.name
            );
        }
    }
}
