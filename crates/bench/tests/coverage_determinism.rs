//! The determinism invariant of the exploration engine: for a fixed
//! `(strategy, seed)`, the coverage numbers — distinct fingerprints,
//! transitions, corpus size and replay count — are *bit-identical* for
//! `jobs = 1` and `jobs = N`, on every strategy including the
//! corpus-scheduled novelty strategy (whose epochs, harvesting and
//! replay scheduling must not depend on worker count or completion
//! order). The full report equality of `parallel_determinism.rs` is
//! asserted on top.
//!
//! Also pins the snapshot-mode invariance: fingerprints are computed
//! incrementally from deltas, so delta mode and full-snapshot mode must
//! report identical coverage.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{registry, BigTable, Wizard};

fn options(strategy: SelectionStrategy) -> CheckOptions {
    CheckOptions::default()
        .with_tests(20)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(20220322)
        .with_shrink(false)
        .with_strategy(strategy)
}

fn todomvc_report(strategy: SelectionStrategy, jobs: usize) -> Report {
    let entry = registry::by_name("vue").expect("registry name");
    let spec = quickstrom::specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    check_spec(&spec, &options(strategy).with_jobs(jobs), &|| {
        Box::new(WebExecutor::new(|| entry.build()))
    })
    .expect("no protocol errors")
}

#[test]
fn coverage_is_identical_across_job_counts_for_every_strategy() {
    for strategy in SelectionStrategy::ALL {
        let sequential = todomvc_report(strategy, 1);
        let seq_coverage = sequential.coverage();
        assert!(seq_coverage.distinct_states > 1, "{strategy}: no coverage");
        for jobs in [2, 4, 7] {
            let parallel = todomvc_report(strategy, jobs);
            assert_eq!(
                sequential, parallel,
                "{strategy}: jobs={jobs} report diverged"
            );
            assert_eq!(
                seq_coverage,
                parallel.coverage(),
                "{strategy}: jobs={jobs} coverage diverged"
            );
        }
    }
}

#[test]
fn novelty_corpus_scheduling_is_deterministic_across_jobs() {
    // The corridor exercises the corpus hardest: most of novelty's
    // coverage arrives through replay-then-extend runs.
    let spec = quickstrom::specstrom::load(quickstrom::specs::WIZARD).expect("spec compiles");
    let run = |jobs: usize| {
        check_spec(
            &spec,
            &options(SelectionStrategy::Novelty)
                .with_tests(24)
                .with_jobs(jobs),
            &|| Box::new(WebExecutor::new(Wizard::new)),
        )
        .expect("no protocol errors")
    };
    let sequential = run(1);
    let coverage = sequential.coverage();
    assert!(coverage.corpus_replays > 0, "corpus never fired");
    for jobs in [2, 4] {
        let parallel = run(jobs);
        assert_eq!(sequential, parallel, "jobs={jobs} report diverged");
        assert_eq!(
            coverage,
            parallel.coverage(),
            "jobs={jobs} coverage diverged (corpus scheduling leaked \
             worker-count dependence)"
        );
    }
}

#[test]
fn coverage_is_identical_across_snapshot_modes() {
    // Fingerprints are maintained incrementally from `SnapshotDelta`s in
    // delta mode and recomputed from full snapshots otherwise; the
    // numbers must agree exactly (the explore crate's proptests state
    // this per step, this pins it end to end).
    let spec = quickstrom::specstrom::load(quickstrom::specs::BIGTABLE).expect("spec compiles");
    let run = |config: WebExecutorConfig| {
        check_spec(
            &spec,
            &options(SelectionStrategy::Novelty).with_tests(10),
            &move || {
                Box::new(WebExecutor::with_config(
                    || BigTable::with_rows(120),
                    config.clone(),
                ))
            },
        )
        .expect("no protocol errors")
    };
    let delta = run(WebExecutorConfig::default());
    let full = run(WebExecutorConfig::full_snapshots());
    assert_eq!(delta, full, "delta mode diverged from full mode");
    assert_eq!(
        delta.coverage(),
        full.coverage(),
        "coverage depends on the snapshot-shipping mode"
    );
    assert!(delta.transport().delta_states > 0, "deltas actually flowed");
}

#[test]
fn novelty_out_explores_uniform_at_equal_budget() {
    // The acceptance headline, pinned at a fixed configuration (the
    // recorded benchmark sweeps more seeds — see `evalharness
    // coverage-compare`): everything is deterministic, so this is a
    // regression gate on the exploration engine, not a flaky statistical
    // test.
    let spec = quickstrom::specstrom::load(quickstrom::specs::BIGTABLE).expect("spec compiles");
    let run = |strategy: SelectionStrategy| {
        check_spec(
            &spec,
            &CheckOptions::default()
                .with_tests(30)
                .with_max_actions(40)
                .with_default_demand(30)
                .with_seed(11)
                .with_shrink(false)
                .with_strategy(strategy)
                .with_jobs(4),
            &|| Box::new(WebExecutor::new(|| BigTable::with_rows(250))),
        )
        .expect("no protocol errors")
    };
    let uniform = run(SelectionStrategy::UniformRandom).coverage();
    let novelty = run(SelectionStrategy::Novelty).coverage();
    assert!(
        novelty.distinct_states * 4 >= uniform.distinct_states * 5,
        "novelty should reach at least 25% more distinct fingerprints \
         than uniform on the grid: {} vs {}",
        novelty.distinct_states,
        uniform.distinct_states,
    );
}
