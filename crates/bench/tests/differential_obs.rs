//! The observability differential suite: tracing/metrics on ≡ off.
//!
//! The observability layer (`quickstrom-obs`, wired through
//! `check_spec_observed`) may only *watch*: span sinks, metrics recorders
//! and failure explanations must never branch checker control flow, so a
//! check run with tracing and metrics fully enabled must produce a
//! [`Report`] bit-identical to the plain entry points — on every
//! workload, across the pipelined and sequential engines, at every jobs
//! and multiplex width, in both evaluation modes, with the shrinker on.
//!
//! On top of the report pins, the suite checks the artifacts themselves:
//! every emitted track must be structurally well-formed (spans properly
//! nested, instants zero-width) with strictly monotone logical clocks —
//! proptested across random seeds, budgets and pipeline shapes on the
//! multiplexed runtime — and failure explanations must be deterministic
//! and name the injected fault's atom.

use proptest::prelude::*;
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{registry, Counter, EggTimer, MenuApp, Wizard, REGISTRY};
use quickstrom::quickstrom_obs::metrics::PROBE_DEPTH;
use quickstrom::specstrom;
use quickstrom::webdom::App;
use quickstrom_bench::todomvc_spec;

/// Checks `source` against `app` plain and observed (tracing + metrics
/// on), asserts the reports are bit-identical, and sanity-checks the
/// artifacts: at least one track, all well-formed, nothing dropped.
fn assert_obs_invisible<A, F>(
    source: &str,
    make_app: F,
    options: &CheckOptions,
) -> (Report, ObsArtifacts)
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let spec = specstrom::load(source).expect("bundled spec compiles");
    let app = make_app.clone();
    let plain = check_spec(&spec, options, &move || {
        Box::new(WebExecutor::new(app.clone()))
    })
    .expect("no protocol errors");
    let (observed, artifacts) = check_spec_observed(
        &spec,
        options,
        &move || Box::new(WebExecutor::new(make_app.clone())),
        &ObsOptions::all(),
    )
    .expect("no protocol errors");
    assert_eq!(observed, plain, "observability changed the report");
    assert!(!artifacts.trace.tracks.is_empty(), "no tracks recorded");
    for track in &artifacts.trace.tracks {
        track
            .check_well_formed()
            .unwrap_or_else(|e| panic!("track {:?}: {e}", track.name));
        assert_eq!(track.dropped, 0, "track {:?} overflowed", track.name);
    }
    assert!(!artifacts.metrics.is_empty(), "no metrics recorded");
    (observed, artifacts)
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(6)
        .with_max_actions(20)
        .with_default_demand(15)
        .with_seed(43)
        .with_shrink(false)
}

#[test]
fn counter_report_is_obs_invariant() {
    assert_obs_invisible(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_report_is_obs_invariant() {
    assert_obs_invisible(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_report_is_obs_invariant() {
    assert_obs_invisible(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn wizard_report_is_obs_invariant() {
    let (report, _) =
        assert_obs_invisible(quickstrom::specs::WIZARD, Wizard::new, &quick_options());
    assert!(report.passed(), "{report}");
}

/// The whole 43-entry registry, crossed over the runtime knobs the
/// tracing layer instruments: entry `i` runs under combination `i % 16`
/// of jobs 1/2 × multiplex 1/3 × pipelined/sequential ×
/// automaton/stepper, plain and observed, and the reports must be
/// bit-identical for every entry.
#[test]
fn registry_reports_identical_with_observability_enabled() {
    let spec = todomvc_spec();
    let base = CheckOptions::default()
        .with_tests(2)
        .with_max_actions(20)
        .with_default_demand(20)
        .with_seed(13)
        .with_shrink(false);
    for (i, entry) in REGISTRY.iter().enumerate() {
        let jobs = 1 + (i % 2);
        let multiplex = if (i / 2) % 2 == 0 { 1 } else { 3 };
        let pipeline = if (i / 4) % 2 == 0 {
            PipelineMode::On
        } else {
            PipelineMode::Off
        };
        let eval = if (i / 8) % 2 == 0 {
            EvalMode::Automaton
        } else {
            EvalMode::Stepper
        };
        let options = base
            .clone()
            .with_jobs(jobs)
            .with_multiplex(multiplex)
            .with_pipeline(pipeline)
            .with_eval_mode(eval);
        let make =
            move || -> Box<dyn Executor> { Box::new(WebExecutor::new(move || entry.build())) };
        let plain = check_spec(&spec, &options, &make).expect("no protocol errors");
        let (observed, artifacts) = check_spec_observed(&spec, &options, &make, &ObsOptions::all())
            .expect("no protocol errors");
        assert_eq!(
            observed, plain,
            "{} (jobs {jobs}, multiplex {multiplex}, {pipeline:?}, {eval:?}): \
             observability changed the report",
            entry.name
        );
        for track in &artifacts.trace.tracks {
            track
                .check_well_formed()
                .unwrap_or_else(|e| panic!("{}: track {:?}: {e}", entry.name, track.name));
        }
    }
}

/// The faulty case with the shrinker on: the counterexample search and the
/// shrink replays run identically under full observability, the
/// explanation blames the atom the injected fault actually breaks (the
/// checkbox invariant reads `.toggle`), and the explanation artifact is
/// deterministic — bit-identical JSON across repeated observed checks.
#[test]
fn faulty_entry_explanation_is_deterministic_and_names_the_fault() {
    let spec = todomvc_spec();
    let entry = registry::by_name("angular2_es2015").expect("registry entry");
    let options = CheckOptions::default()
        .with_tests(20)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true)
        .with_jobs(2)
        .with_multiplex(2);
    let make = move || -> Box<dyn Executor> { Box::new(WebExecutor::new(move || entry.build())) };
    let plain = check_spec(&spec, &options, &make).expect("no protocol errors");
    let observe = || {
        check_spec_observed(&spec, &options, &make, &ObsOptions::all()).expect("no protocol errors")
    };
    let (observed, artifacts) = observe();
    assert_eq!(observed, plain, "observability changed the failing report");
    assert!(!observed.passed(), "the faulty entry must fail");

    let explanation = artifacts.explanations.first().expect("an explanation");
    assert!(
        explanation.failed_at_step.is_some(),
        "the explanation must locate the collapsing step"
    );
    assert!(
        explanation.steps.iter().flat_map(|s| &s.flips).any(
            |f| f.atom.contains(".toggle") || f.selectors.iter().any(|s| s.contains(".toggle"))
        ),
        "the explanation must name the `.toggle` atom:\n{explanation}"
    );
    let (_, again) = observe();
    assert_eq!(
        explanation.to_json(),
        again
            .explanations
            .first()
            .expect("an explanation")
            .to_json(),
        "the explanation artifact must be deterministic"
    );
}

/// Metric *counters* and the probe-depth histogram are purely logical
/// (run/state/action totals, expansions demanded per step), so — unlike
/// the latency histograms — they must be independent of the worker count:
/// recorders merge in run-index order.
#[test]
fn logical_metrics_are_jobs_invariant() {
    let spec = todomvc_spec();
    let entry = registry::by_name("vue").expect("registry entry");
    let options = CheckOptions::default()
        .with_tests(6)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(7)
        .with_shrink(false);
    let run = |jobs: usize| {
        let (_, artifacts) = check_spec_observed(
            &spec,
            &options.clone().with_jobs(jobs),
            &move || Box::new(WebExecutor::new(move || entry.build())),
            &ObsOptions::all(),
        )
        .expect("no protocol errors");
        artifacts.metrics
    };
    let one = run(1);
    let two = run(2);
    assert_eq!(one.counters, two.counters, "counters diverged across jobs");
    assert_eq!(
        one.histograms.get(PROBE_DEPTH),
        two.histograms.get(PROBE_DEPTH),
        "probe-depth histogram diverged across jobs"
    );
    assert!(one.counters["runs_total"] > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under the multiplexed pipelined runtime, with random seeds,
    /// budgets, speculation depths and widths: every emitted track nests
    /// properly and its logical clocks are strictly monotone — every span
    /// closes after it opens, instants are zero-width, and no clock value
    /// is ever reused within a track.
    #[test]
    fn spans_nest_properly_under_the_multiplexed_pipeline(
        seed in 0u64..1000,
        tests in 1usize..5,
        multiplex in 1usize..4,
        depth in 1usize..6,
        jobs in 1usize..3,
    ) {
        let spec = specstrom::load(quickstrom::specs::COUNTER).expect("bundled spec compiles");
        let options = CheckOptions::default()
            .with_tests(tests)
            .with_max_actions(12)
            .with_default_demand(8)
            .with_seed(seed)
            .with_shrink(false)
            .with_jobs(jobs)
            .with_multiplex(multiplex)
            .with_pipeline_depth(depth);
        let (_, artifacts) = check_spec_observed(
            &spec,
            &options,
            &|| Box::new(WebExecutor::new(Counter::new)),
            &ObsOptions::all(),
        )
        .expect("no protocol errors");
        prop_assert!(!artifacts.trace.tracks.is_empty(), "no tracks recorded");
        for track in &artifacts.trace.tracks {
            prop_assert_eq!(track.dropped, 0u64, "track {} overflowed", &track.name);
            if let Err(e) = track.check_well_formed() {
                panic!("track {:?}: {e}", track.name);
            }
            let mut clocks = Vec::new();
            for event in &track.events {
                if event.instant {
                    prop_assert_eq!(
                        event.seq_open, event.seq_close,
                        "instant with width in {}", &track.name
                    );
                    clocks.push(event.seq_open);
                } else {
                    prop_assert!(
                        event.seq_open < event.seq_close,
                        "span closed before it opened in {}", &track.name
                    );
                    clocks.push(event.seq_open);
                    clocks.push(event.seq_close);
                }
            }
            let total = clocks.len();
            clocks.sort_unstable();
            clocks.dedup();
            prop_assert_eq!(clocks.len(), total, "clock value reused in {}", &track.name);
        }
    }
}
