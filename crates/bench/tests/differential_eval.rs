//! The bundled-spec differential suite: compiled-IR evaluation ≡ reference
//! tree-walk, behaviourally, on all four bundled specifications.
//!
//! For each spec we drive the real application behind the web executor
//! with a deterministic pseudo-random action script, record the observed
//! snapshot trace, and then progress every checked property through *both*
//! evaluators over the identical trace, comparing the step-by-step
//! [`StepReport`]s. This pins the compilation pass (interning, slot
//! resolution, IR lowering — see `specstrom::compile`) to the original
//! interpreter on exactly the workload the checker runs: real element
//! records, real guards, real residual-formula expansion.
//!
//! The expression-level differential proptests live in
//! `crates/specstrom/tests/properties.rs`; this suite covers the
//! spec-level pipeline (top-level environments, deferred bindings,
//! closures, actions).

use quickstrom::prelude::*;
use quickstrom::quickltl::{Evaluator, Formula, StepReport};
use quickstrom::quickstrom_apps::{registry, Counter, EggTimer, MenuApp};
use quickstrom::quickstrom_protocol::{ActionKind, CheckerMsg, Executor, ExecutorMsg, Symbol};
use quickstrom::specstrom::{self, reference, EvalCtx};

/// A tiny deterministic generator (xorshift) for the driver script.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Drives one executor session with pseudo-random enabled actions and
/// returns the observed snapshot trace (with `happened` filled in the way
/// the checker does for acted/event states).
fn record_trace(
    spec: &CompiledSpec,
    mut executor: Box<dyn Executor>,
    steps: usize,
    seed: u64,
) -> Vec<StateSnapshot> {
    let mut rng = Prng(seed | 1);
    let mut trace = Vec::new();
    let replies = executor.send(CheckerMsg::Start {
        dependencies: spec.dependencies.clone(),
    });
    for msg in &replies {
        let mut state = msg
            .update()
            .resolve(trace.last())
            .expect("resolvable update");
        if let ExecutorMsg::Event { event, .. } = msg {
            state.happened = vec![Symbol::intern(event)];
        }
        trace.push(state);
    }
    let actions: Vec<_> = spec.actions.values().filter(|a| !a.event).collect();
    for _ in 0..steps {
        let last = trace.last().expect("loaded state");
        let ctx = EvalCtx::with_state(last, 10);
        // Enabled actions at the current state, guard-checked through the
        // *compiled* evaluator (both evaluators then see the same trace).
        let mut candidates = Vec::new();
        for av in &actions {
            if let Some(guard) = &av.guard {
                if !specstrom::eval_guard(guard, &ctx).unwrap_or(false) {
                    continue;
                }
            }
            let Some(kind) = av.kind.clone() else {
                continue;
            };
            let name = av.name.clone().unwrap_or_default();
            if kind.needs_target() {
                let selector = av.selector.expect("targeted action has a selector");
                for index in 0..last.matches(&selector).len() {
                    let mut kind = kind.clone();
                    if let ActionKind::Input(None) = kind {
                        kind = ActionKind::Input(Some(
                            ["", "a", "buy milk", " x "][rng.pick(4)].to_owned(),
                        ));
                    }
                    candidates.push(ActionInstance {
                        name: name.clone(),
                        kind,
                        target: Some((selector, index)),
                        timeout_ms: av.timeout_ms,
                    });
                }
            } else {
                candidates.push(ActionInstance {
                    name: name.clone(),
                    kind,
                    target: None,
                    timeout_ms: av.timeout_ms,
                });
            }
        }
        if candidates.is_empty() {
            break;
        }
        let action = candidates[rng.pick(candidates.len())].clone();
        let version = trace.len() as u64;
        let replies = executor.send(CheckerMsg::Act {
            action: action.clone(),
            version,
        });
        for msg in &replies {
            let mut state = msg
                .update()
                .resolve(trace.last())
                .expect("resolvable update");
            state.happened = match msg {
                ExecutorMsg::Acted { .. } => vec![Symbol::intern(&action.name)],
                ExecutorMsg::Timeout { .. } => vec![Symbol::intern("timeout?")],
                ExecutorMsg::Event { event, .. } => vec![Symbol::intern(event)],
            };
            trace.push(state);
        }
    }
    executor.send(CheckerMsg::End);
    trace
}

use quickstrom::quickstrom_protocol::ActionInstance;

/// Progresses one property through both evaluators over the same trace and
/// asserts identical step reports.
fn assert_equivalent_progression(src: &str, spec: &CompiledSpec, trace: &[StateSnapshot]) {
    let parsed = specstrom::parse_spec(src).expect("spec parses");
    let ref_compiled = reference::compile_env(&parsed).expect("reference env builds");
    for check in &spec.checks {
        for property in &check.properties {
            let compiled_thunk = spec
                .property_thunk(property)
                .unwrap_or_else(|| panic!("compiled property `{property}`"));
            let ref_thunk = ref_compiled
                .property_thunk(property)
                .unwrap_or_else(|| panic!("reference property `{property}`"));
            let mut compiled_ev = Evaluator::new(Formula::Atom(compiled_thunk));
            let mut ref_ev = Evaluator::new(Formula::Atom(ref_thunk));
            for (i, state) in trace.iter().enumerate() {
                let ctx = EvalCtx::with_state(state, 10);
                let compiled_report = compiled_ev
                    .observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx))
                    .unwrap_or_else(|e| panic!("{property} state {i}: compiled: {e}"));
                let ref_report = ref_ev
                    .observe_expanding(&mut |t| reference::expand_thunk(t, &ctx))
                    .unwrap_or_else(|e| panic!("{property} state {i}: reference: {e}"));
                assert_eq!(
                    compiled_report,
                    ref_report,
                    "`{property}` diverged at state {i} of {}",
                    trace.len()
                );
                if matches!(compiled_report, StepReport::Definitive(_)) {
                    break;
                }
            }
        }
    }
}

fn differential_on(src: &str, make: &dyn Fn() -> Box<dyn Executor>, steps: usize) {
    let spec = specstrom::load(src).expect("spec compiles");
    for seed in [1u64, 7, 20220322] {
        let trace = record_trace(&spec, make(), steps, seed);
        assert!(trace.len() > 1, "driver produced a trace");
        assert_equivalent_progression(src, &spec, &trace);
    }
}

#[test]
fn counter_spec_progresses_identically() {
    differential_on(
        quickstrom::specs::COUNTER,
        &|| Box::new(WebExecutor::new(Counter::new)),
        25,
    );
}

#[test]
fn menu_spec_progresses_identically() {
    differential_on(
        quickstrom::specs::MENU,
        &|| Box::new(WebExecutor::new(|| MenuApp::new(500))),
        25,
    );
}

#[test]
fn egg_timer_spec_progresses_identically() {
    differential_on(
        quickstrom::specs::EGG_TIMER,
        &|| Box::new(WebExecutor::new(EggTimer::new)),
        30,
    );
}

#[test]
fn todomvc_spec_progresses_identically() {
    let entry = registry::by_name("vue").expect("registry entry");
    differential_on(
        quickstrom::specs::TODOMVC,
        &|| Box::new(WebExecutor::new(|| entry.build())),
        30,
    );
}

/// A faulty implementation too: divergence is most likely where formulae
/// actually fail, so progress both evaluators through a violation.
#[test]
fn faulty_todomvc_fails_identically_in_both_evaluators() {
    let entry = registry::by_name("elm").expect("registry entry");
    differential_on(
        quickstrom::specs::TODOMVC,
        &|| Box::new(WebExecutor::new(|| entry.build())),
        40,
    );
}
