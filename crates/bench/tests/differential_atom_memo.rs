//! The atom-memo differential suite: `value` ≡ `footprint` ≡ `off`.
//!
//! The value-keyed expansion memo (`CheckOptions::atom_cache`, see
//! DESIGN.md's *Atom expansion memoization*) serves a cached expansion
//! whenever an atom's footprint-restricted projection of the current
//! state hashes to a previously seen key. Like atom masking before it,
//! the optimisation must be *observably invisible*: verdicts, runs,
//! recorded traces and shrunk counterexamples are bit-identical across
//! all three cache modes, on every workload. [`Report`]'s `PartialEq`
//! compares everything except wall-clock, transport and coverage
//! accounting, which is precisely the invariant stated here.
//!
//! Coverage mirrors the masking suite: every bundled specification
//! against its real application, a faulty TodoMVC entry with the
//! shrinker enabled (memoized replay drives shrinking too), the whole
//! 43-entry registry crossed over `jobs` 1/2 × delta/full snapshots ×
//! automaton/stepper evaluation, a tiny-capacity run that forces FIFO
//! eviction, and a property-based test of the keying soundness
//! condition: states that agree on an atom's footprint projection yield
//! structurally identical expansions.
//!
//! These tests run in debug builds, so every memo hit additionally goes
//! through the collision-verification path (`cfg!(debug_assertions)` in
//! the checker's expand closure): the served entry is re-derived and
//! compared structurally before being used.

use proptest::prelude::*;
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{
    registry, BigTable, Counter, EggTimer, MenuApp, TodoMvc, Wizard,
};
use quickstrom::quickstrom_protocol::ElementState;
use quickstrom::specstrom::{self, expand_thunk, EvalCtx, MemoEntry};
use quickstrom::webdom::App;
use quickstrom_bench::{check_entry_mode, SnapshotMode};
use std::sync::OnceLock;

/// Checks `spec` against `app` under all three atom-cache modes and
/// asserts the reports are bit-identical (verdicts, runs, traces,
/// totals), plus the counter invariants of each mode.
fn assert_cache_invisible<A, F>(source: &str, make_app: F, options: &CheckOptions) -> Report
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let spec = specstrom::load(source).expect("bundled spec compiles");
    let run = |cache: AtomCacheMode| {
        let make_app = make_app.clone();
        let options = options.clone().with_atom_cache(cache);
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::new(make_app.clone()))
        })
        .expect("no protocol errors")
    };
    let value = run(AtomCacheMode::Value);
    let footprint = run(AtomCacheMode::Footprint);
    let off = run(AtomCacheMode::Off);
    assert_eq!(value, footprint, "value vs footprint reports diverged");
    assert_eq!(value, off, "value vs off reports diverged");
    let v = value.timings();
    let o = off.timings();
    // Off re-evaluates everything and never touches the memo.
    assert_eq!(o.atoms_total, o.atoms_reevaluated, "off must not skip");
    assert_eq!(o.atom_memo_hits, 0, "off must not consult the memo");
    // Same verdicts imply the evaluator requested the same atom set.
    assert_eq!(v.atoms_total, o.atoms_total, "atom demand diverged");
    // Value mode routes every request through the memo: each one is
    // either a hit or a miss, and only misses run the IR. The memo must
    // actually hit (not a vacuous comparison).
    assert!(v.atom_memo_hits > 0, "the memo never hit");
    assert_eq!(
        v.atom_memo_hits + v.atom_memo_misses,
        v.atoms_total,
        "every requested atom is a hit or a miss"
    );
    assert_eq!(
        v.atom_memo_misses, v.atoms_reevaluated,
        "only memo misses may re-run atom IR"
    );
    value
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(8)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(97)
        .with_shrink(false)
}

#[test]
fn counter_spec_verdicts_cache_invariant() {
    assert_cache_invisible(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_spec_verdicts_cache_invariant() {
    assert_cache_invisible(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_spec_verdicts_cache_invariant() {
    assert_cache_invisible(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn todomvc_spec_verdicts_cache_invariant() {
    let entry = registry::by_name("vue").expect("registry entry");
    assert_cache_invisible(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
}

#[test]
fn bigtable_spec_verdicts_cache_invariant() {
    let report = assert_cache_invisible(
        quickstrom::specs::BIGTABLE,
        || BigTable::with_rows(120),
        &quick_options(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn wizard_spec_verdicts_cache_invariant() {
    let report = assert_cache_invisible(quickstrom::specs::WIZARD, Wizard::new, &quick_options());
    assert!(report.passed(), "{report}");
}

/// The memo is shared at the property level, so parallel workers race
/// lookups and inserts (first insert wins) and a later check starts with
/// the memo already warm. Neither may change the report: run the same
/// check sequentially, then with two workers against the *same* compiled
/// spec (warm memo), and compare.
#[test]
fn shared_memo_is_job_count_invariant() {
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("spec compiles");
    let run = |jobs: usize| {
        let options = quick_options().with_jobs(jobs);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(Counter::new))
        })
        .expect("no protocol errors")
    };
    let sequential = run(1);
    let parallel = run(2);
    assert_eq!(
        sequential, parallel,
        "jobs=2 with a warm shared memo diverged"
    );
}

/// The faulty-entry case, shrinker on: counterexample search and the
/// scripted shrink replays run with the memo active, and must match
/// uncached evaluation exactly — including the `shrunk` flag and the
/// per-state trace.
#[test]
fn faulty_entry_shrinks_identically_across_cache_modes() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true);
    let run = |cache: AtomCacheMode| {
        let options = options.clone().with_atom_cache(cache);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| {
                TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared])
            }))
        })
        .expect("no protocol errors")
    };
    let value = run(AtomCacheMode::Value);
    let footprint = run(AtomCacheMode::Footprint);
    let off = run(AtomCacheMode::Off);
    assert_eq!(value, footprint);
    assert_eq!(value, off);
    assert!(!value.passed(), "the faulty app must fail");
    let cx_value = value.properties[0].counterexample().expect("cx");
    let cx_off = off.properties[0].counterexample().expect("cx");
    assert!(cx_value.shrunk, "the shrinker ran");
    assert_eq!(cx_value.script, cx_off.script);
    assert_eq!(cx_value.trace, cx_off.trace);
    assert_eq!(cx_value.verdict, cx_off.verdict);
}

/// A deliberately tiny memo forces FIFO eviction long before the run
/// ends; verdicts must survive the churn and the eviction counter must
/// record it. (The entries that *are* served from the memo still pass
/// the debug collision check.)
#[test]
fn tiny_memo_capacity_evicts_without_changing_verdicts() {
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("spec compiles");
    let run = |cache: AtomCacheMode| {
        let options = quick_options()
            .with_atom_cache(cache)
            .with_atom_memo_capacity(2);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(Counter::new))
        })
        .expect("no protocol errors")
    };
    let value = run(AtomCacheMode::Value);
    let off = run(AtomCacheMode::Off);
    assert_eq!(value, off, "eviction churn changed the report");
    let v = value.timings();
    assert!(v.atom_memo_evictions > 0, "capacity 2 never evicted");
    assert_eq!(v.atom_memo_hits + v.atom_memo_misses, v.atoms_total);
}

/// The whole 43-entry registry, crossed over the checker's runtime
/// knobs: entry `i` runs under combination `i % 8` of jobs 1/2 ×
/// delta/full snapshots × automaton/stepper evaluation, so the full
/// cross product is covered across the sweep. All three cache modes must
/// agree per entry. The registry shares one compiled TodoMVC spec (and
/// therefore one property-level memo) across all entries, so later
/// entries exercise hits against states produced by *other*
/// implementations.
#[test]
fn registry_sweep_agrees_across_cache_modes_jobs_snapshots_and_engines() {
    let base = CheckOptions::default()
        .with_tests(3)
        .with_max_actions(25)
        .with_default_demand(25)
        .with_seed(11)
        .with_shrink(false);
    let mut memo_hits_total = 0u64;
    for (i, entry) in quickstrom::quickstrom_apps::REGISTRY.iter().enumerate() {
        let jobs = 1 + (i % 2);
        let snapshot = if (i / 2) % 2 == 0 {
            SnapshotMode::Delta
        } else {
            SnapshotMode::Full
        };
        let eval = if (i / 4) % 2 == 0 {
            EvalMode::Automaton
        } else {
            EvalMode::Stepper
        };
        let options = base.clone().with_jobs(jobs).with_eval_mode(eval);
        let value = check_entry_mode(
            entry,
            &options.clone().with_atom_cache(AtomCacheMode::Value),
            snapshot,
        );
        let footprint = check_entry_mode(
            entry,
            &options.clone().with_atom_cache(AtomCacheMode::Footprint),
            snapshot,
        );
        let off = check_entry_mode(
            entry,
            &options.with_atom_cache(AtomCacheMode::Off),
            snapshot,
        );
        assert_eq!(
            (value.passed, value.states),
            (off.passed, off.states),
            "{} (jobs {jobs}, {snapshot:?}, {eval:?}) diverged between value and off",
            entry.name
        );
        assert_eq!(
            (footprint.passed, footprint.states),
            (off.passed, off.states),
            "{} (jobs {jobs}, {snapshot:?}, {eval:?}) diverged between footprint and off",
            entry.name
        );
        assert_eq!(
            value.atoms_total, off.atoms_total,
            "{}: the evaluator requested a different atom set",
            entry.name
        );
        memo_hits_total += value.atom_memo_hits;
    }
    assert!(memo_hits_total > 0, "the shared memo never hit");
}

/// The spec backing the projection proptest: one state-comparison atom
/// and one unrolling atom whose expansion captures an eager binding
/// (`old`), so `MemoEntry` comparison covers both constant-folded
/// expansions and sub-atom environments.
const PROJECTION_SPEC: &str = r#"
let ~stable = `#status`.text == "ok" && `#items`.count > 2;

let ~stepper {
  let old = `#status`.text;
  nextW (`#status`.text == old)
};

let ~prop = always (stable || stepper);

action poke! = click!(`#status`);

check prop;
"#;

fn projection_spec() -> &'static CompiledSpec {
    static SPEC: OnceLock<CompiledSpec> = OnceLock::new();
    SPEC.get_or_init(|| specstrom::load(PROJECTION_SPEC).expect("projection spec compiles"))
}

/// Builds a snapshot whose footprint-relevant content is `status` (the
/// `#status` text) and `items` (the `#items` element count), and whose
/// irrelevant content — extra fields on `#status`, a whole `#noise`
/// query — is free to differ between snapshots.
fn snapshot_with_junk(
    status: &str,
    items: usize,
    junk_value: &str,
    junk_checked: bool,
    noise: &[String],
) -> StateSnapshot {
    let mut state = StateSnapshot::default();
    let mut status_el = ElementState::with_text(status);
    status_el.value = junk_value.to_owned();
    status_el.checked = junk_checked;
    state.insert_query("#status", vec![status_el]);
    state.insert_query(
        "#items",
        (0..items)
            .map(|i| ElementState::with_text(i.to_string()))
            .collect(),
    );
    state.insert_query(
        "#noise",
        noise.iter().map(ElementState::with_text).collect(),
    );
    state
}

proptest! {
    /// The keying soundness condition behind the memo: two states that
    /// agree on an atom's footprint projection (here: `#status` text and
    /// `#items` count) produce structurally identical expansions — no
    /// matter how the rest of the state differs. `MemoEntry` performs
    /// exactly the comparison the checker's debug collision check uses.
    #[test]
    fn equal_footprint_projections_expand_identically(
        status in prop_oneof![Just("ok".to_owned()), "[a-z]{0,2}"],
        items in 0usize..5,
        junk_value1 in "[a-z]{0,3}",
        junk_value2 in "[a-z]{0,3}",
        junk_checked1 in any::<bool>(),
        junk_checked2 in any::<bool>(),
        noise1 in prop::collection::vec("[a-z]{0,4}", 0..3),
        noise2 in prop::collection::vec("[a-z]{0,4}", 0..3),
    ) {
        let spec = projection_spec();
        let s1 = snapshot_with_junk(&status, items, &junk_value1, junk_checked1, &noise1);
        let s2 = snapshot_with_junk(&status, items, &junk_value2, junk_checked2, &noise2);
        let ctx1 = EvalCtx::with_state(&s1, 20);
        let ctx2 = EvalCtx::with_state(&s2, 20);
        for name in ["stable", "stepper"] {
            let atom = spec.property_thunk(name).expect("atom exists");
            let e1 = expand_thunk(&atom, &ctx1).expect("expansion succeeds");
            let e2 = expand_thunk(&atom, &ctx2).expect("expansion succeeds");
            let entry = MemoEntry::build(atom.clone(), e1);
            prop_assert!(
                entry.matches_expansion(&e2),
                "{name}: equal projections produced different expansions \
                 (status {status:?}, items {items})"
            );
        }
    }

    /// And the discriminating direction: when the footprint projection
    /// *differs* (different `#status` text), the state-capturing atom's
    /// expansions must not be conflated by the comparison the collision
    /// check relies on.
    #[test]
    fn different_projections_are_distinguished(
        items in 0usize..5,
        noise in prop::collection::vec("[a-z]{0,4}", 0..3),
    ) {
        let spec = projection_spec();
        let s1 = snapshot_with_junk("ok", items, "", false, &noise);
        let s2 = snapshot_with_junk("nope", items, "", false, &noise);
        let atom = spec.property_thunk("stepper").expect("atom exists");
        let e1 = expand_thunk(&atom, &EvalCtx::with_state(&s1, 20)).expect("expansion");
        let e2 = expand_thunk(&atom, &EvalCtx::with_state(&s2, 20)).expect("expansion");
        let entry = MemoEntry::build(atom.clone(), e1);
        prop_assert!(
            !entry.matches_expansion(&e2),
            "expansions capturing different `old` values compared equal"
        );
    }
}
