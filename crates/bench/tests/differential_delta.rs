//! The delta-mode ≡ full-mode differential suite.
//!
//! The incremental snapshot pipeline must be *observably invisible*: for
//! any workload, a checker fed `SnapshotDelta`s reconstructs exactly the
//! states a full-snapshot executor would have shipped, so verdicts, state
//! counts, recorded traces and shrunk counterexamples are bit-identical
//! between the two modes. [`Report`]'s `PartialEq` compares everything
//! except wall-clock and transport accounting, which is precisely the
//! invariant stated here.
//!
//! Coverage: every bundled specification against its real application
//! (including the large-DOM BigTable grid), a faulty TodoMVC entry with
//! the shrinker enabled (so delta-mode replay drives shrinking too), the
//! whole 43-entry registry, and the `jobs = N` determinism invariant on
//! top of delta mode.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{registry, BigTable, Counter, EggTimer, MenuApp, TodoMvc};
use quickstrom::quickstrom_executor::WebExecutorConfig;
use quickstrom::specstrom;
use quickstrom::webdom::App;
use quickstrom_bench::{check_entry_mode, SnapshotMode};

/// Checks `spec` against `app` in both snapshot modes and asserts the
/// reports are bit-identical (verdicts, runs, traces, totals).
fn assert_modes_agree<A, F>(source: &str, make_app: F, options: &CheckOptions) -> Report
where
    A: App + 'static,
    F: Fn() -> A + Send + Sync + Clone + 'static,
{
    let spec = specstrom::load(source).expect("bundled spec compiles");
    let run = |config: WebExecutorConfig| {
        let make_app = make_app.clone();
        check_spec(&spec, options, &move || {
            Box::new(WebExecutor::with_config(make_app.clone(), config.clone()))
        })
        .expect("no protocol errors")
    };
    let delta = run(WebExecutorConfig::default());
    let full = run(WebExecutorConfig::full_snapshots());
    assert_eq!(delta, full, "delta mode diverged from full mode");
    // Deltas actually flowed in delta mode (not a vacuous comparison) —
    // unless the adaptive fallback decided full snapshots were smaller
    // throughout, which cannot happen for these multi-selector specs.
    assert!(delta.transport().delta_states > 0);
    assert_eq!(full.transport().delta_states, 0);
    assert!(delta.transport().shipped_bytes < full.transport().shipped_bytes);
    delta
}

fn quick_options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(8)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(97)
        .with_shrink(false)
}

#[test]
fn counter_spec_agrees_across_modes() {
    assert_modes_agree(quickstrom::specs::COUNTER, Counter::new, &quick_options());
}

#[test]
fn menu_spec_agrees_across_modes() {
    assert_modes_agree(
        quickstrom::specs::MENU,
        || MenuApp::new(500),
        &quick_options(),
    );
}

#[test]
fn egg_timer_spec_agrees_across_modes() {
    assert_modes_agree(
        quickstrom::specs::EGG_TIMER,
        EggTimer::new,
        &quick_options().with_max_actions(40),
    );
}

#[test]
fn todomvc_spec_agrees_across_modes() {
    let entry = registry::by_name("vue").expect("registry entry");
    assert_modes_agree(
        quickstrom::specs::TODOMVC,
        || entry.build(),
        &quick_options().with_default_demand(40).with_max_actions(50),
    );
}

#[test]
fn bigtable_spec_agrees_across_modes() {
    let report = assert_modes_agree(
        quickstrom::specs::BIGTABLE,
        || BigTable::with_rows(120),
        &quick_options(),
    );
    assert!(report.passed(), "{report}");
    // The large-DOM regime: deltas must ship an order of magnitude less.
    let t = report.transport();
    assert!(
        t.delta_ratio() < 0.5,
        "expected a large-DOM delta win, got {t:?}"
    );
}

/// The faulty-entry case, shrinker on: the counterexample search, the
/// scripted shrink replays and the final minimised script all run on the
/// shared-state representation, and must match full mode exactly —
/// including the `shrunk` flag and the per-state trace.
#[test]
fn faulty_entry_shrinks_identically_in_both_modes() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(30)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(true);
    let run = |config: WebExecutorConfig| {
        check_spec(&spec, &options, &move || {
            Box::new(WebExecutor::with_config(
                || TodoMvc::with_faults([quickstrom::quickstrom_apps::Fault::PendingCleared]),
                config.clone(),
            ))
        })
        .expect("no protocol errors")
    };
    let delta = run(WebExecutorConfig::default());
    let full = run(WebExecutorConfig::full_snapshots());
    assert_eq!(delta, full);
    assert!(!delta.passed(), "the faulty app must fail");
    let cx_delta = delta.properties[0].counterexample().expect("cx");
    let cx_full = full.properties[0].counterexample().expect("cx");
    assert!(cx_delta.shrunk, "the shrinker ran");
    assert_eq!(cx_delta.script, cx_full.script);
    assert_eq!(cx_delta.trace, cx_full.trace);
    assert_eq!(cx_delta.verdict, cx_full.verdict);
    // The reconstructed trace carries real states, structurally shared.
    assert!(!cx_delta.trace.is_empty());
    assert!(cx_delta.trace[0].happened().contains(&"loaded?".into()));
}

/// The whole 43-entry registry: per-entry verdicts and state counts are
/// mode-independent.
#[test]
fn registry_sweep_agrees_across_modes() {
    let options = CheckOptions::default()
        .with_tests(4)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(7)
        .with_shrink(false);
    for entry in quickstrom::quickstrom_apps::REGISTRY {
        let delta = check_entry_mode(entry, &options, SnapshotMode::Delta);
        let full = check_entry_mode(entry, &options, SnapshotMode::Full);
        assert_eq!(
            (delta.passed, delta.states),
            (full.passed, full.states),
            "{} diverged between modes",
            entry.name
        );
    }
}

/// Delta mode preserves the parallel-runtime determinism invariant:
/// `jobs = N` reports remain bit-identical to `jobs = 1`.
#[test]
fn delta_mode_keeps_jobs_determinism() {
    let spec = specstrom::load(quickstrom::specs::BIGTABLE).expect("spec compiles");
    let run = |jobs: usize| {
        let options = CheckOptions::default()
            .with_tests(8)
            .with_max_actions(20)
            .with_default_demand(15)
            .with_seed(13)
            .with_shrink(false)
            .with_jobs(jobs);
        check_spec(&spec, &options, &|| {
            Box::new(WebExecutor::new(|| BigTable::with_rows(80)))
        })
        .expect("no protocol errors")
    };
    let sequential = run(1);
    for jobs in [2, 4] {
        assert_eq!(sequential, run(jobs), "jobs={jobs} diverged");
    }
}
