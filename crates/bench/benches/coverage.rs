//! The exploration-engine benchmarks: what coverage accounting costs,
//! and what the strategies cost relative to each other.
//!
//! Two questions matter for the hot path. First, fingerprint overhead:
//! every checker step now updates an incremental fingerprint
//! (O(changed) term re-hashing) and a per-run coverage map — the
//! `fingerprint_*` benches measure the raw hashing building blocks on a
//! large grid snapshot, full recompute vs the incremental one-selector
//! update. Second, end-to-end strategy cost: the `check_*` benches run
//! the same BigTable check under each strategy; novelty's extra
//! bookkeeping (pair maps, corpus scheduling) should be noise next to
//! the executor and evaluation phases.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::BigTable;
use quickstrom::quickstrom_explore::Fingerprinter;
use quickstrom::quickstrom_protocol::{fingerprint_state, ElementState, SnapshotDelta};
use std::sync::Arc;

/// A 250-row-grid-shaped snapshot (one wide selector, several narrow
/// ones), built without driving an executor.
fn grid_snapshot() -> StateSnapshot {
    let mut s = StateSnapshot::new();
    let rows: Vec<ElementState> = (0..250)
        .map(|i| {
            let mut e = ElementState::with_text(format!("row {i}"));
            if i == 17 {
                e.classes.push("selected".into());
            }
            e
        })
        .collect();
    s.insert_query(".grid-row", rows);
    s.insert_query("#total-count", vec![ElementState::with_text("250")]);
    s.insert_query("#shown-count", vec![ElementState::with_text("250")]);
    s.insert_query("#selected-name", vec![ElementState::with_text("alpha")]);
    s
}

fn bench_fingerprint(c: &mut Criterion) {
    let base = grid_snapshot();
    c.bench_function("fingerprint_full_recompute", |b| {
        b.iter(|| std::hint::black_box(fingerprint_state(&base)));
    });

    // The incremental path: one selector (of four) changes per step.
    let mut next = base.clone();
    next.insert_query("#selected-name", vec![ElementState::with_text("bravo")]);
    let delta = SnapshotDelta::diff(&base, &next, 2);
    let mut warm = Fingerprinter::new();
    warm.observe(&base, None);
    c.bench_function("fingerprint_incremental_one_selector", |b| {
        b.iter(|| {
            let mut fp = warm.clone();
            std::hint::black_box(fp.observe_update(&next, &delta.clone().into()))
        });
    });
}

fn bench_strategies(c: &mut Criterion) {
    let spec =
        Arc::new(quickstrom::specstrom::load(quickstrom::specs::BIGTABLE).expect("spec compiles"));
    let opts = CheckOptions::default()
        .with_tests(2)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(2026)
        .with_shrink(false);
    for strategy in SelectionStrategy::ALL {
        let spec = Arc::clone(&spec);
        let opts = opts.clone().with_strategy(strategy);
        c.bench_function(&format!("bigtable_check_{}", strategy.name()), |b| {
            b.iter(|| {
                let report = check_spec(&spec, &opts, &|| {
                    Box::new(WebExecutor::new(|| BigTable::with_rows(250)))
                })
                .expect("no protocol errors");
                assert!(report.passed());
                std::hint::black_box(report.coverage().distinct_states)
            });
        });
    }
}

criterion_group!(benches, bench_fingerprint, bench_strategies);
criterion_main!(benches);
