//! The sharded registry sweep: wall-clock of a slice of the Table 1 sweep
//! at different worker counts. This is the project's hottest end-to-end
//! path; the parallel runtime's whole purpose is to move the `jobs > 1`
//! lines below the `jobs = 1` baseline while producing identical verdicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry::{Entry, REGISTRY};
use quickstrom_bench::{sweep_entries, todomvc_spec};

/// A representative slice: passing entries dominate (as in the paper —
/// failing checks exit early, so passing implementations set the pace).
fn slice_of_registry() -> Vec<&'static Entry> {
    let passing = REGISTRY.iter().filter(|e| !e.expected_to_fail()).take(6);
    let failing = REGISTRY.iter().filter(|e| e.expected_to_fail()).take(2);
    passing.chain(failing).collect()
}

fn bench_sweep_jobs(c: &mut Criterion) {
    let entries = slice_of_registry();
    let options = CheckOptions::default()
        .with_tests(8)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(20220322)
        .with_shrink(false);
    let mut group = c.benchmark_group("registry_sweep");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let results = sweep_entries(&entries, &options, jobs);
                std::hint::black_box(results.iter().filter(|r| r.passed).count())
            });
        });
    }
}

fn bench_inner_jobs(c: &mut Criterion) {
    // The inner fan-out: runs of one property on one (passing) entry.
    let entry = REGISTRY
        .iter()
        .find(|e| !e.expected_to_fail())
        .expect("a passing entry");
    // One shared Arc<CompiledSpec> across all job counts and iterations:
    // this bench measures checking, not parsing.
    let spec = todomvc_spec();
    let mut group = c.benchmark_group("single_entry_runs");
    for jobs in [1usize, 4] {
        let options = CheckOptions::default()
            .with_tests(16)
            .with_max_actions(40)
            .with_default_demand(30)
            .with_seed(20220322)
            .with_shrink(false)
            .with_jobs(jobs);
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &options, |b, options| {
            b.iter(|| {
                let report = check_spec(&spec, options, &|| {
                    Box::new(WebExecutor::new(|| entry.build()))
                })
                .expect("no protocol errors");
                std::hint::black_box(report.passed())
            });
        });
    }
}

criterion_group!(benches, bench_sweep_jobs, bench_inner_jobs);
criterion_main!(benches);
