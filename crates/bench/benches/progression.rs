//! Ablation A3: formula progression throughput (states/second) as formula
//! depth and demand size vary — the practicality claim of §2.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quickstrom::quickltl::{Evaluator, Formula};

/// A nested safety/liveness formula of the shape the TodoMVC spec uses:
/// `□ₙ (p → ◇ₖ (q ∧ Xw r))`, at increasing nesting depth.
fn nested_formula(depth: usize, demand: u32) -> Formula<char> {
    let mut body = Formula::atom('q').and(Formula::atom('r').weak_next());
    for _ in 0..depth {
        body = Formula::atom('p').implies(Formula::eventually(demand, body));
    }
    Formula::always(demand, body)
}

/// Drives the evaluator over a deterministic pseudo-random trace.
fn progress_states(formula: &Formula<char>, states: usize) {
    let mut ev = Evaluator::new(formula.clone());
    let mut x: u32 = 0x2545_f491;
    for _ in 0..states {
        // xorshift for a cheap, deterministic state stream
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let bits = x;
        ev.observe::<std::convert::Infallible>(&mut |p| {
            Ok(match p {
                'p' => bits & 1 == 0,
                'q' => bits & 2 == 0,
                _ => bits & 4 == 0,
            })
        })
        .expect("infallible");
    }
    std::hint::black_box(ev.outcome());
}

fn bench_progression(c: &mut Criterion) {
    let mut group = c.benchmark_group("progression");
    const STATES: usize = 500;
    group.throughput(Throughput::Elements(STATES as u64));
    for depth in [1usize, 2, 3] {
        for demand in [0u32, 10, 100] {
            let formula = nested_formula(depth, demand);
            group.bench_with_input(
                BenchmarkId::new(format!("depth{depth}"), format!("demand{demand}")),
                &formula,
                |b, f| b.iter(|| progress_states(f, STATES)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_progression);
criterion_main!(benches);
