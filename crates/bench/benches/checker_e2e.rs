//! End-to-end checking cost: one full TodoMVC run (spec compile, session,
//! formula progression over every state) and one egg-timer run — the unit
//! of work behind every cell of Table 1 and Figure 13.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{registry, EggTimer};
use quickstrom_bench::todomvc_spec;

fn bench_todomvc_run(c: &mut Criterion) {
    let entry = registry::by_name("vue").expect("registry entry");
    // Shared once-compiled spec: the iteration closure measures checking
    // only (spec compile has its own benchmark below).
    let spec = todomvc_spec();
    let options = CheckOptions::default()
        .with_tests(1)
        .with_max_actions(50)
        .with_default_demand(40)
        .with_seed(1)
        .with_shrink(false);
    c.bench_function("todomvc_single_run", |b| {
        b.iter(|| {
            let report = check_spec(&spec, &options, &|| {
                Box::new(WebExecutor::new(|| entry.build()))
            })
            .expect("no protocol errors");
            std::hint::black_box(report.passed())
        });
    });
}

fn bench_spec_compile(c: &mut Criterion) {
    c.bench_function("todomvc_spec_compile", |b| {
        b.iter(|| {
            std::hint::black_box(
                quickstrom::specstrom::load(quickstrom::specs::TODOMVC).expect("compiles"),
            )
        });
    });
}

fn bench_egg_timer_run(c: &mut Criterion) {
    let spec_src = quickstrom::specs::EGG_TIMER;
    let spec = quickstrom::specstrom::load(spec_src).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(1)
        .with_max_actions(450)
        .with_default_demand(100)
        .with_seed(2)
        .with_shrink(false);
    c.bench_function("egg_timer_full_spec", |b| {
        b.iter(|| {
            let report = check_spec(&spec, &options, &|| {
                Box::new(WebExecutor::new(EggTimer::new))
            })
            .expect("no protocol errors");
            std::hint::black_box(report.passed())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_todomvc_run, bench_spec_compile, bench_egg_timer_run
}
criterion_main!(benches);
