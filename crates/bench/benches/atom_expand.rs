//! The atom-expansion micro-benchmark: generic IR walk vs the compiled
//! atom evaluator vs a warm memo hit.
//!
//! One sample expands the TodoMVC safety invariants against a realistic
//! `loaded?` snapshot, three ways:
//!
//! * `atom_expand_generic` — the full IR interpreter (`expand_thunk`),
//!   what `--atom-cache off` pays for every requested atom.
//! * `atom_expand_compiled` — the `specstrom::atomc` lowering: a
//!   closure-free specialized evaluator when the atom's shape is on the
//!   fast path, the generic walk otherwise. This is the memo-miss cost
//!   under `--atom-cache value`.
//! * `atom_expand_memo_hit` — the warm path: hash the atom's
//!   footprint-restricted projection of the state and look the expansion
//!   up in the value-keyed memo. No IR runs at all; this is what repeat
//!   states cost.
//!
//! The three are pinned semantically by `differential_atom_memo`; this
//! benchmark quantifies the gaps the DESIGN.md *Atom expansion
//! memoization* section cites.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry;
use quickstrom::quickstrom_protocol::{masked_query_term, CheckerMsg, ExecutorMsg, ProjectionHash};
use quickstrom::specstrom::{
    self, compile_atom, footprint_of_thunk, AtomFootprint, AtomKeyer, AtomMemo, CompiledAtom,
    EvalCtx, MemoEntry, Thunk,
};
use quickstrom_bench::todomvc_spec;

/// The TodoMVC safety invariants — the atoms every observed state
/// re-evaluates, and exactly what the expansion memo collapses.
const SAFETY_ATOMS: &[&str] = &[
    "checkboxInv",
    "strongInv",
    "pluralInv",
    "filtersInv",
    "focusInv",
    "blankInv",
    "toggleAllInv",
    "emptyAllInv",
    "countingInv",
    "stateInv",
    "initial",
];

/// A realistic TodoMVC snapshot: boot the vue registry entry behind the
/// executor and take the `loaded?` state with every spec dependency
/// instrumented.
fn todomvc_snapshot() -> StateSnapshot {
    let spec = todomvc_spec();
    let entry = registry::by_name("vue").expect("registry entry");
    let mut executor = WebExecutor::new(|| entry.build());
    let replies = executor.send(CheckerMsg::Start {
        dependencies: spec.dependencies.clone(),
    });
    let first = replies.first().expect("loaded? reply");
    let mut state = match first {
        ExecutorMsg::Event { state, .. } => state
            .full()
            .expect("the initial state is a full snapshot")
            .clone(),
        other => panic!("unexpected first reply {other:?}"),
    };
    state.happened = vec!["loaded?".into()];
    state
}

/// The checker's projection hash, reproduced over public API: an ordered
/// fold of the footprint-masked query terms plus the `happened` set when
/// the atom reads it.
fn projection_hash(footprint: &AtomFootprint, state: &StateSnapshot) -> u64 {
    let mut hash = ProjectionHash::new();
    for (selector, usage) in &footprint.selectors {
        hash.term(masked_query_term(
            selector,
            state.matches(selector),
            usage.field_mask(),
        ));
    }
    if footprint.reads_happened {
        hash.flag(true);
        for name in &state.happened {
            hash.text(name.as_str());
        }
    }
    hash.finish()
}

fn bench_atom_expand(c: &mut Criterion) {
    let state = todomvc_snapshot();
    let spec = todomvc_spec();
    let atoms: Vec<Thunk> = SAFETY_ATOMS
        .iter()
        .map(|name| spec.property_thunk(name).expect("safety atom exists"))
        .collect();

    let compiled: Vec<CompiledAtom> = atoms.iter().map(compile_atom).collect();
    let fast = compiled.iter().filter(|ca| ca.is_fast()).count();
    eprintln!(
        "atom_expand: {fast}/{} safety atoms on the compiled fast path",
        compiled.len()
    );

    c.bench_function("atom_expand_generic", |b| {
        b.iter(|| {
            let ctx = EvalCtx::with_state(&state, 100);
            for atom in &atoms {
                std::hint::black_box(
                    specstrom::expand_thunk(atom, &ctx).expect("expansion succeeds"),
                );
            }
        });
    });

    c.bench_function("atom_expand_compiled", |b| {
        b.iter(|| {
            let ctx = EvalCtx::with_state(&state, 100);
            for (atom, ca) in atoms.iter().zip(&compiled) {
                std::hint::black_box(ca.expand(atom, &ctx).expect("expansion succeeds"));
            }
        });
    });

    // Warm memo: key and insert every atom's expansion up front, then
    // measure the serve path — projection hash, lookup, entry clone.
    let mut keyer = AtomKeyer::new();
    let footprints: Vec<AtomFootprint> = atoms.iter().map(footprint_of_thunk).collect();
    let keys: Vec<u64> = atoms.iter().map(|a| keyer.key(a)).collect();
    let memo = AtomMemo::new(1024);
    let ctx = EvalCtx::with_state(&state, 100);
    for ((atom, key), footprint) in atoms.iter().zip(&keys).zip(&footprints) {
        let expansion = specstrom::expand_thunk(atom, &ctx).expect("expansion succeeds");
        memo.insert(
            (*key, projection_hash(footprint, &state)),
            MemoEntry::build(atom.clone(), expansion),
        );
    }

    c.bench_function("atom_expand_memo_hit", |b| {
        b.iter(|| {
            for (key, footprint) in keys.iter().zip(&footprints) {
                let entry = memo
                    .lookup((*key, projection_hash(footprint, &state)))
                    .expect("warm memo hits");
                std::hint::black_box(entry);
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_atom_expand
}
criterion_main!(benches);
