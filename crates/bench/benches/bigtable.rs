//! The large-DOM benchmark: checking the BigTable grid with the
//! incremental snapshot pipeline versus the full-snapshot protocol.
//!
//! The grid renders hundreds of rows behind selectors that match all of
//! them, while each action touches at most a couple of elements — the
//! regime the delta protocol and the dirty-tracked render cache were
//! built for. Both modes produce bit-identical reports (pinned by
//! `crates/bench/tests/differential_delta.rs`); this bench measures the
//! wall-clock gap, and TodoMVC is included as the small-DOM control.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::{registry, BigTable};
use quickstrom::quickstrom_executor::WebExecutorConfig;
use quickstrom_bench::todomvc_spec;
use std::sync::Arc;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(2)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(2026)
        .with_shrink(false)
}

fn bench_bigtable_modes(c: &mut Criterion) {
    let spec =
        Arc::new(quickstrom::specstrom::load(quickstrom::specs::BIGTABLE).expect("spec compiles"));
    let opts = options();
    for (name, config) in [
        ("bigtable_check_delta", WebExecutorConfig::default()),
        ("bigtable_check_full", WebExecutorConfig::full_snapshots()),
    ] {
        let spec = Arc::clone(&spec);
        let config = config.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                let config = config.clone();
                let report = check_spec(&spec, &opts, &move || {
                    Box::new(WebExecutor::with_config(
                        || BigTable::with_rows(250),
                        config.clone(),
                    ))
                })
                .expect("no protocol errors");
                assert!(report.passed());
                std::hint::black_box(report.transport().shipped_bytes)
            });
        });
    }
}

fn bench_todomvc_modes(c: &mut Criterion) {
    let spec = todomvc_spec();
    let entry = registry::by_name("vue").expect("registry entry");
    let opts = CheckOptions::default()
        .with_tests(1)
        .with_max_actions(50)
        .with_default_demand(40)
        .with_seed(1)
        .with_shrink(false);
    for (name, config) in [
        ("todomvc_check_delta", WebExecutorConfig::default()),
        ("todomvc_check_full", WebExecutorConfig::full_snapshots()),
    ] {
        let spec = Arc::clone(&spec);
        let config = config.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                let config = config.clone();
                let report = check_spec(&spec, &opts, &move || {
                    Box::new(WebExecutor::with_config(|| entry.build(), config.clone()))
                })
                .expect("no protocol errors");
                std::hint::black_box(report.passed())
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bigtable_modes, bench_todomvc_modes
}
criterion_main!(benches);
