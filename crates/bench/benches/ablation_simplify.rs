//! Ablation A1 (timing side): per-step progression cost with the full
//! simplifier vs with idempotence dedup disabled. Complements the
//! formula-size measurements printed by `evalharness ablation-simplify`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quickstrom::quickltl::{Evaluator, Formula, SimplifyMode};

fn accumulating_formula() -> Formula<char> {
    // □₀ (p → ◇₀ (q ∧ ◇₀ r)) — spawns one eventuality per state when p
    // holds and q/r never do; dedup keeps the residual constant-size.
    Formula::always(
        0u32,
        Formula::atom('p').implies(Formula::eventually(
            0u32,
            Formula::atom('q').and(Formula::eventually(0u32, Formula::atom('r'))),
        )),
    )
}

fn run(mode: SimplifyMode, states: usize) {
    let mut ev = Evaluator::with_mode(accumulating_formula(), mode);
    for _ in 0..states {
        ev.observe::<std::convert::Infallible>(&mut |p| Ok(*p == 'p'))
            .expect("infallible");
    }
    std::hint::black_box(ev.residual().map(Formula::size));
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simplify");
    for states in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("full", states), &states, |b, &s| {
            b.iter(|| run(SimplifyMode::Full, s))
        });
        group.bench_with_input(BenchmarkId::new("no_dedup", states), &states, |b, &s| {
            b.iter(|| run(SimplifyMode::NoDedup, s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
