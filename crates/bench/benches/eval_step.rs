//! The per-step evaluation micro-benchmark: compiled IR vs the reference
//! tree-walk on the TodoMVC hot path.
//!
//! One "step" is exactly what the checker does per observed state: expand
//! the property formula's thunk atoms against the snapshot (unroll →
//! simplify → step, via `Evaluator::observe_expanding`). The compiled
//! evaluator resolves variables by `(depth, slot)` and element projections
//! by pre-seeded symbols; the reference evaluator compares strings down
//! the environment chain and rebuilds string-keyed records — the cost the
//! compilation pass removes. The two are pinned semantically by the
//! differential suites; this benchmark quantifies the gap.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry;
use quickstrom::quickstrom_protocol::{CheckerMsg, ExecutorMsg};
use quickstrom::specstrom::{self, reference, EvalCtx};
use quickstrom_bench::todomvc_spec;

/// A realistic TodoMVC snapshot: boot the vue registry entry behind the
/// executor and take the `loaded?` state with every spec dependency
/// instrumented.
fn todomvc_snapshot() -> StateSnapshot {
    let spec = todomvc_spec();
    let entry = registry::by_name("vue").expect("registry entry");
    let mut executor = WebExecutor::new(|| entry.build());
    let replies = executor.send(CheckerMsg::Start {
        dependencies: spec.dependencies.clone(),
    });
    let first = replies.first().expect("loaded? reply");
    let mut state = match first {
        ExecutorMsg::Event { state, .. } => state
            .full()
            .expect("the initial state is a full snapshot")
            .clone(),
        other => panic!("unexpected first reply {other:?}"),
    };
    state.happened = vec!["loaded?".into()];
    state
}

fn bench_eval_step(c: &mut Criterion) {
    let state = todomvc_snapshot();

    // Compiled pipeline: slot-resolved IR against the interned snapshot.
    let compiled = todomvc_spec();
    let compiled_thunk = compiled
        .property_thunk("safety")
        .expect("safety property exists");

    // Reference pipeline: the original tree-walk over the same source.
    let parsed = specstrom::parse_spec(quickstrom::specs::TODOMVC).expect("spec parses");
    let ref_compiled = reference::compile_env(&parsed).expect("reference env builds");
    let ref_thunk = ref_compiled
        .property_thunk("safety")
        .expect("safety property exists");

    c.bench_function("eval_step_compiled", |b| {
        b.iter(|| {
            let ctx = EvalCtx::with_state(&state, 100);
            std::hint::black_box(
                specstrom::expand_thunk(&compiled_thunk, &ctx).expect("expansion succeeds"),
            )
        });
    });

    c.bench_function("eval_step_reference", |b| {
        b.iter(|| {
            let ctx = EvalCtx::with_state(&state, 100);
            std::hint::black_box(
                reference::expand_thunk(&ref_thunk, &ctx).expect("expansion succeeds"),
            )
        });
    });

    // The same comparison through real formula progression: several
    // observations of the same state, so residual-formula atoms (the
    // obligations `always`/`eventually` re-spawn) are expanded too.
    const STEPS: usize = 5;

    c.bench_function("eval_step_progression_compiled", |b| {
        b.iter(|| {
            let mut ev = quickstrom::quickltl::Evaluator::new(quickstrom::quickltl::Formula::Atom(
                compiled_thunk.clone(),
            ));
            for _ in 0..STEPS {
                let ctx = EvalCtx::with_state(&state, 100);
                ev.observe_expanding(&mut |t| specstrom::expand_thunk(t, &ctx))
                    .expect("expansion succeeds");
            }
            std::hint::black_box(ev.outcome())
        });
    });

    c.bench_function("eval_step_progression_reference", |b| {
        b.iter(|| {
            let mut ev = quickstrom::quickltl::Evaluator::new(quickstrom::quickltl::Formula::Atom(
                ref_thunk.clone(),
            ));
            for _ in 0..STEPS {
                let ctx = EvalCtx::with_state(&state, 100);
                ev.observe_expanding(&mut |t| reference::expand_thunk(t, &ctx))
                    .expect("expansion succeeds");
            }
            std::hint::black_box(ev.outcome())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_eval_step
}
criterion_main!(benches);
