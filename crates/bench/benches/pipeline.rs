//! The pipelined session runtime, measured: sequential engine vs
//! two-stage pipeline, with and without injected executor latency.
//!
//! The in-process [`WebExecutor`] answers in microseconds, so on a single
//! core the pipeline's thread hand-off is pure overhead — the honest
//! baseline pair shows exactly that. The interesting rows wrap the
//! executor in a [`LatencyExecutor`] (a fixed per-message delay, the shape
//! of a real browser or remote executor): the evaluator stage then
//! progresses formulas while the next reply is in flight, and a worker
//! multiplexing several sessions (`CheckOptions::multiplex`) overlaps
//! their delays — with N in-flight sessions, per-step latency amortizes
//! toward `delay / N` instead of summing into every step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::Counter;
use std::time::Duration;

/// A small fixed workload: enough runs for multiplexing to matter, short
/// enough that the latency-injected rows stay in benchmark budget.
fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(6)
        .with_max_actions(15)
        .with_default_demand(20)
        .with_seed(7)
        .with_shrink(false)
}

fn check(options: &CheckOptions, delay: Duration) -> bool {
    let spec = quickstrom::specstrom::load(quickstrom::specs::COUNTER).expect("spec compiles");
    let report = check_spec(&spec, options, &move || {
        Box::new(LatencyExecutor::new(WebExecutor::new(Counter::new), delay))
    })
    .expect("no protocol errors");
    report.passed()
}

/// The zero-latency pair: on one core this prices the pipeline's thread
/// hand-off itself (the sequential engine should win or tie).
fn bench_inprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_inprocess");
    let configs = [
        ("sequential", options().with_pipeline(PipelineMode::Off)),
        ("pipelined", options().with_pipeline(PipelineMode::On)),
    ];
    for (label, options) in configs {
        group.bench_with_input(BenchmarkId::new(label, "0ms"), &options, |b, options| {
            b.iter(|| std::hint::black_box(check(options, Duration::ZERO)));
        });
    }
    group.finish();
}

/// The latency-injected rows: 1 ms per executor message, the regime the
/// pipeline was built for. `multiplex 3` overlaps three sessions' delays
/// on one worker and should land well under the sequential row.
fn bench_latency_hiding(c: &mut Criterion) {
    let delay = Duration::from_millis(1);
    let mut group = c.benchmark_group("pipeline_latency");
    let configs = [
        ("sequential", options().with_pipeline(PipelineMode::Off)),
        (
            "pipelined_multiplex1",
            options().with_pipeline(PipelineMode::On).with_multiplex(1),
        ),
        (
            "pipelined_multiplex3",
            options().with_pipeline(PipelineMode::On).with_multiplex(3),
        ),
    ];
    for (label, options) in configs {
        group.bench_with_input(BenchmarkId::new(label, "1ms"), &options, |b, options| {
            b.iter(|| std::hint::black_box(check(options, delay)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inprocess, bench_latency_hiding);
criterion_main!(benches);
