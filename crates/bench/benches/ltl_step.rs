//! The formula-progression micro-benchmark: the table-driven evaluation
//! automata vs the plain stepper.
//!
//! One "step" is one observed state pushed through the temporal skeleton.
//! The stepper re-derives the residual every time (unroll → simplify →
//! classify → step); the eager automaton did all of that at compile time
//! and steps by indexing a per-state row with a valuation bitset; the
//! memoized [`TransitionTable`] — what the checker actually uses — pays
//! the stepper price on a miss and a hash lookup on a hit. The three are
//! pinned semantically by `automaton_equivalence.rs` and the
//! `differential_automaton` suite; this benchmark quantifies the gap.
//! The `ltl_step_check_*` pair measures the same difference end to end
//! through a real checking session.

use criterion::{criterion_group, criterion_main, Criterion};
use quickstrom::prelude::*;
use quickstrom::quickltl::automaton::{canonicalize, EagerAutomaton, EagerCaps};
use quickstrom::quickltl::{AtomId, Evaluator, Observation, TableStep, TransitionTable};
use quickstrom::quickstrom_apps::Counter;

/// The benchmark formula: a safety/response skeleton in the shape the
/// bundled specs use — `□₅₀ (a → ◇₁₀ b) ∧ □₅₀ ¬c` over three atoms.
fn skeleton() -> Formula<u8> {
    Formula::always(
        50u32,
        Formula::atom(0u8).implies(Formula::eventually(10u32, Formula::atom(1u8))),
    )
    .and(Formula::always(50u32, Formula::atom(2u8).not()))
}

/// A deterministic 100-state trace of valuation bitsets: `a` holds on
/// every third state, `b` two states later, `c` never — so obligations
/// are constantly spawned and discharged without a definitive verdict.
fn trace() -> Vec<u8> {
    (0..100u32)
        .map(|i| u8::from(i % 3 == 0) | (u8::from(i % 3 == 2) << 1))
        .collect()
}

fn eval(p: u8, s: u8) -> bool {
    s & (1 << p) != 0
}

fn bench_ltl_step(c: &mut Criterion) {
    let formula = skeleton();
    let states = trace();

    c.bench_function("ltl_step_stepper", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(formula.clone());
            for s in &states {
                ev.observe(&mut |p| Ok::<_, std::convert::Infallible>(eval(*p, *s)))
                    .expect("infallible");
            }
            std::hint::black_box(ev.forced_outcome())
        });
    });

    let caps = EagerCaps {
        max_states: 65_536,
        max_live_atoms: 8,
    };
    let auto = EagerAutomaton::compile(formula.clone(), &caps)
        .expect("the skeleton's residual space is finite");
    c.bench_function("ltl_step_eager_automaton", |b| {
        b.iter(|| {
            let mut runner = auto.runner();
            for s in &states {
                runner
                    .observe(&mut |p| Ok::<_, std::convert::Infallible>(eval(*p, *s)))
                    .expect("infallible");
            }
            std::hint::black_box(runner.forced_outcome())
        });
    });

    // The memoized table, pre-warmed: steady-state checking where every
    // transition is a hit (the checker shares one table per property
    // across all runs, so after the first run this is the common case).
    let (canonical, sources) = canonicalize(formula.map_atoms(&mut |p| AtomId::from(p)));
    let drive = |table: &mut TransitionTable, bindings0: &[u8]| {
        let mut state = table.start();
        let mut bindings = bindings0.to_vec();
        for s in &states {
            let obs: Observation = table
                .live_atoms(state)
                .iter()
                .map(|&id| {
                    #[allow(clippy::cast_possible_truncation)]
                    let atom = bindings[id as usize];
                    (id, Formula::constant(eval(atom, *s)))
                })
                .collect();
            match table.step(state, &obs).expect("within cap") {
                (TableStep::Done(_), _) => break,
                (
                    TableStep::Goto {
                        state: next,
                        sources,
                        ..
                    },
                    _,
                ) => {
                    bindings = sources.iter().map(|&i| bindings[i as usize]).collect();
                    state = next;
                }
            }
        }
        state
    };
    #[allow(clippy::cast_possible_truncation)]
    let bindings0: Vec<u8> = sources.iter().map(|&i| i as u8).collect();
    let mut table = TransitionTable::new(canonical, 4096);
    drive(&mut table, &bindings0); // warm: every subsequent pass hits
    c.bench_function("ltl_step_transition_table", |b| {
        b.iter(|| std::hint::black_box(drive(&mut table, &bindings0)));
    });

    // End to end: a full checking session on the counter app under each
    // evaluation mode (everything else — seeds, actions, masking —
    // identical; so is the report, by the differential suite).
    let spec = std::sync::Arc::new(load(quickstrom::specs::COUNTER).expect("spec compiles"));
    let options = CheckOptions::default()
        .with_tests(3)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(11)
        .with_shrink(false);
    for (name, mode) in [
        ("ltl_step_check_automaton", EvalMode::Automaton),
        ("ltl_step_check_stepper", EvalMode::Stepper),
    ] {
        let spec = std::sync::Arc::clone(&spec);
        let options = options.clone().with_eval_mode(mode);
        c.bench_function(name, move |b| {
            b.iter(|| {
                let report = check_spec(&spec, &options, &|| {
                    Box::new(WebExecutor::new(Counter::new))
                })
                .expect("no protocol errors");
                assert!(report.passed());
                std::hint::black_box(report)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ltl_step
}
criterion_main!(benches);
