//! Property-based tests for the fingerprint laws the exploration engine
//! rests on:
//!
//! * **Delta-vs-full stability** — a fingerprint maintained incrementally
//!   from `SnapshotDelta`s equals the fingerprint recomputed from the
//!   fully reconstructed snapshot, over arbitrary update sequences. This
//!   is what lets the checker fingerprint in O(changed) per step without
//!   coverage numbers depending on the snapshot-shipping mode.
//! * **Selector-order insensitivity** — the fingerprint does not depend
//!   on the order selectors are inserted, iterated, or (for the
//!   incremental path) listed in a changed-set.
//! * **Shape abstraction** — exact text never matters within a length
//!   bucket; element count, classes and boolean projections always do.

use proptest::prelude::*;
use quickstrom_explore::{fingerprint_state, Fingerprinter};
use quickstrom_protocol::{
    text_bucket, ElementState, Selector, SnapshotDelta, StateSnapshot, Symbol,
};

const SELECTORS: &[&str] = &[
    "#app",
    "#count",
    ".todo-list li",
    ".rows",
    "input:checked",
    ".footer",
    "#filter-high",
];
const TEXTS: &[&str] = &["", "x", "row", "buy milk", "déjà vu", "  pad  "];
const CLASSES: &[&str] = &["selected", "completed", "active", "editing"];
const ATTRS: &[(&str, &str)] = &[("href", "#/all"), ("rel", "x"), ("data-k", "v")];

fn gen_element() -> impl Strategy<Value = ElementState> {
    (
        prop::sample::select(TEXTS),
        prop::sample::select(TEXTS),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(prop::sample::select(CLASSES), 0..3),
        prop::collection::vec(prop::sample::select(ATTRS), 0..2),
    )
        .prop_map(|(text, value, checked, enabled, visible, classes, attrs)| {
            let mut e = ElementState {
                text: text.to_owned(),
                value: value.to_owned(),
                checked,
                enabled,
                visible,
                ..ElementState::default()
            };
            e.classes = classes.into_iter().map(str::to_owned).collect();
            e.classes.sort();
            e.classes.dedup();
            for (k, v) in attrs {
                e.attributes.insert(Symbol::intern(k), v.to_owned());
            }
            e
        })
}

/// A snapshot as a list of `(selector, elements)` pairs — the *list*
/// form, so tests can permute insertion order.
fn gen_query_list() -> impl Strategy<Value = Vec<(&'static str, Vec<ElementState>)>> {
    prop::collection::vec(
        (
            prop::sample::select(SELECTORS),
            prop::collection::vec(gen_element(), 0..4),
        ),
        0..SELECTORS.len(),
    )
}

fn snapshot_from(pairs: &[(&'static str, Vec<ElementState>)]) -> StateSnapshot {
    let mut s = StateSnapshot::new();
    for (sel, elems) in pairs {
        s.insert_query(Selector::new(*sel), elems.clone());
    }
    s
}

proptest! {
    /// Incremental fingerprinting over a chain of deltas equals full
    /// recomputation at every step — the delta-vs-full stability law.
    #[test]
    fn incremental_equals_full_over_delta_chains(
        states in prop::collection::vec(gen_query_list(), 1..6),
    ) {
        let snapshots: Vec<StateSnapshot> =
            states.iter().map(|p| snapshot_from(p)).collect();
        let mut incremental = Fingerprinter::new();
        // The first state arrives as a full snapshot…
        let first = incremental.observe(&snapshots[0], None);
        prop_assert_eq!(first, fingerprint_state(&snapshots[0]));
        // …and every subsequent one as a delta against its predecessor.
        for window in snapshots.windows(2) {
            let delta = SnapshotDelta::diff(&window[0], &window[1], 2);
            let via_delta = incremental.observe_update(&window[1], &delta.into());
            prop_assert_eq!(via_delta, fingerprint_state(&window[1]));

            // And independently: a fresh fingerprinter fed the full
            // snapshot agrees — coverage cannot depend on shipping mode.
            let mut fresh = Fingerprinter::new();
            prop_assert_eq!(fresh.observe(&window[1], None), via_delta);
        }
    }

    /// Insertion order of selectors never matters.
    #[test]
    fn selector_insertion_order_is_irrelevant(
        pairs in gen_query_list(),
    ) {
        // Dedupe by selector first (a duplicate key would make the last
        // insertion win, which is about map semantics, not fingerprints).
        let mut seen = std::collections::BTreeSet::new();
        let deduped: Vec<_> = pairs
            .into_iter()
            .filter(|(sel, _)| seen.insert(*sel))
            .collect();
        let forwards = snapshot_from(&deduped);
        let mut reversed_pairs = deduped.clone();
        reversed_pairs.reverse();
        let backwards = snapshot_from(&reversed_pairs);
        prop_assert_eq!(fingerprint_state(&forwards), fingerprint_state(&backwards));
    }

    /// The changed-selector list handed to the incremental path may be
    /// presented in any order (and may conservatively include unchanged
    /// selectors) without affecting the result.
    #[test]
    fn changed_list_order_and_padding_are_irrelevant(
        base in gen_query_list(),
        next in gen_query_list(),
    ) {
        let base = snapshot_from(&base);
        let next = snapshot_from(&next);
        // Conservative over-approximation: every selector "changed".
        let mut all: Vec<Selector> = base
            .queries
            .keys()
            .chain(next.queries.keys())
            .copied()
            .collect();
        all.sort();
        all.dedup();
        let mut f1 = Fingerprinter::new();
        f1.observe(&base, None);
        let mut f2 = f1.clone();
        let mut reversed = all.clone();
        reversed.reverse();
        let a = f1.observe(&next, Some(&all));
        let b = f2.observe(&next, Some(&reversed));
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, fingerprint_state(&next));
    }

    /// Replacing every text with another text from the same length bucket
    /// never changes the fingerprint (the shape abstraction).
    #[test]
    fn same_bucket_text_substitution_is_invisible(
        pairs in gen_query_list(),
    ) {
        let original = snapshot_from(&pairs);
        let mut substituted = StateSnapshot::new();
        for (sel, elems) in &pairs {
            let swapped: Vec<ElementState> = elems
                .iter()
                .map(|e| {
                    let mut e = e.clone();
                    // A same-length rewrite stays in the same bucket.
                    let rewritten: String = e.text.chars().map(|_| 'z').collect();
                    assert_eq!(text_bucket(&rewritten), text_bucket(&e.text));
                    e.text = rewritten;
                    e
                })
                .collect();
            substituted.insert_query(Selector::new(*sel), swapped);
        }
        prop_assert_eq!(
            fingerprint_state(&original),
            fingerprint_state(&substituted)
        );
    }

    /// Appending an element to a selector always changes the fingerprint
    /// (count is part of the shape).
    #[test]
    fn element_count_always_matters(
        pairs in gen_query_list(),
        extra in gen_element(),
    ) {
        let original = snapshot_from(&pairs);
        let sel = Selector::new(pairs.first().map_or("#app", |(s, _)| s));
        let mut grown_elems: Vec<ElementState> = original.matches(&sel).to_vec();
        grown_elems.push(extra);
        let mut grown = original.clone();
        grown.insert_query(sel, grown_elems);
        prop_assert_ne!(fingerprint_state(&original), fingerprint_state(&grown));
    }
}
