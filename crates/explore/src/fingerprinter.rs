//! Incremental fingerprint maintenance: O(changed) per step.
//!
//! [`fingerprint_state`] walks every selector of a snapshot; for the
//! incremental snapshot pipeline that would throw away exactly the
//! advantage deltas buy. A [`Fingerprinter`] instead keeps the
//! per-selector [`query_term`]s of the last observed state and, when told
//! which selectors changed (a
//! [`SnapshotDelta`](quickstrom_protocol::SnapshotDelta) says exactly
//! that), subtracts the stale terms and adds the fresh ones — the
//! commutative-sum construction of the fingerprint makes the update
//! exact, not approximate, which the explore crate's proptests pin
//! against full recomputation.

use quickstrom_protocol::{
    fingerprint_state, masked_query_term, query_term, FieldMask, Selector, StateFingerprint,
};
use quickstrom_protocol::{StateSnapshot, StateUpdate};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maintains the [`StateFingerprint`] of an evolving state in O(changed)
/// per step.
///
/// Two abstractions are available: the default spec-agnostic *shape* hash
/// ([`query_term`]), and a *spec-aware* projection hash
/// ([`Fingerprinter::spec_aware`], [`masked_query_term`]) that hashes
/// exactly the selectors and element projections a compiled spec's static
/// analysis says its atoms can read. The incremental update discipline is
/// identical for both — terms sum commutatively per selector.
#[derive(Debug, Clone, Default)]
pub struct Fingerprinter {
    /// Per-selector terms of the last observed state.
    terms: BTreeMap<Selector, u64>,
    /// The running sum of `terms`.
    current: StateFingerprint,
    /// `Some` for spec-aware fingerprinting: the per-selector projection
    /// masks from the spec's static analysis. Selectors absent from the
    /// map contribute no term at all.
    masks: Option<Arc<BTreeMap<Selector, FieldMask>>>,
}

impl Fingerprinter {
    /// A fresh fingerprinter that has observed no state (its current
    /// fingerprint is [`StateFingerprint::EMPTY`]).
    #[must_use]
    pub fn new() -> Fingerprinter {
        Fingerprinter::default()
    }

    /// A fresh *spec-aware* fingerprinter: terms cover only the selectors
    /// in `masks`, hashing exactly the masked projections (with exact
    /// text, not shape buckets) — see [`FieldMask`] for the trade-off.
    #[must_use]
    pub fn spec_aware(masks: Arc<BTreeMap<Selector, FieldMask>>) -> Fingerprinter {
        Fingerprinter {
            masks: Some(masks),
            ..Fingerprinter::default()
        }
    }

    /// The term of one selector's results under this fingerprinter's
    /// abstraction, `None` when the selector contributes nothing (masked
    /// out entirely).
    fn term(&self, sel: &Selector, elems: &[quickstrom_protocol::ElementState]) -> Option<u64> {
        match &self.masks {
            None => Some(query_term(sel, elems)),
            Some(masks) => masks
                .get(sel)
                .map(|mask| masked_query_term(sel, elems, *mask)),
        }
    }

    /// The fingerprint of the last observed state.
    #[must_use]
    pub fn current(&self) -> StateFingerprint {
        self.current
    }

    /// Observes the next state. `changed` lists the selectors whose query
    /// results may differ from the previous state (additions and removals
    /// included); `None` means "unknown — recompute everything".
    ///
    /// Passing a `changed` list that misses a selector whose results
    /// actually changed produces a stale fingerprint — callers should
    /// derive the list from the exact delta algebra
    /// ([`SnapshotDelta::changed_selectors`]), as
    /// [`Fingerprinter::observe_update`] does.
    ///
    /// [`SnapshotDelta::changed_selectors`]: quickstrom_protocol::SnapshotDelta::changed_selectors
    pub fn observe(
        &mut self,
        state: &StateSnapshot,
        changed: Option<&[Selector]>,
    ) -> StateFingerprint {
        match changed {
            None => {
                self.terms.clear();
                self.current = StateFingerprint::EMPTY;
                for (sel, elems) in &state.queries {
                    if let Some(term) = self.term(sel, elems) {
                        self.terms.insert(*sel, term);
                        self.current = self.current.add_term(term);
                    }
                }
                debug_assert!(
                    self.masks.is_some() || self.current == fingerprint_state(state),
                    "shape recompute must match fingerprint_state"
                );
            }
            Some(selectors) => {
                for sel in selectors {
                    if let Some(old) = self.terms.remove(sel) {
                        self.current = self.current.remove_term(old);
                    }
                    if let Some(elems) = state.queries.get(sel) {
                        if let Some(term) = self.term(sel, elems) {
                            self.terms.insert(*sel, term);
                            self.current = self.current.add_term(term);
                        }
                    }
                }
            }
        }
        self.current
    }

    /// Observes the state produced by a [`StateUpdate`]: full snapshots
    /// recompute from scratch, deltas update only their changed selectors.
    /// `state` must be the snapshot the update resolved to.
    pub fn observe_update(
        &mut self,
        state: &StateSnapshot,
        update: &StateUpdate,
    ) -> StateFingerprint {
        match update {
            StateUpdate::Full(_) => self.observe(state, None),
            StateUpdate::Delta(delta) => self.observe(state, Some(&delta.changed_selectors())),
        }
    }
}

/// A cache of per-selector [`masked_query_term`]s maintained with the same
/// O(changed) discipline as [`Fingerprinter`], for consumers that need the
/// *individual* terms rather than their commutative sum — the checker's
/// value-keyed atom-expansion memo hashes each atom's footprint as an
/// ordered sequence of these terms, and would otherwise recompute every
/// selector's projection hash for every atom at every step.
///
/// Invalidate with [`ProjectionTermCache::invalidate`] on a delta's
/// changed selectors (or [`ProjectionTermCache::clear`] on a full
/// snapshot), then read terms back with [`ProjectionTermCache::term`];
/// unchanged selectors hit the cache. A cached term is reused only when
/// the requested mask matches the one it was computed under, so callers
/// mixing masks per selector stay correct (at the cost of recomputes).
#[derive(Debug, Clone, Default)]
pub struct ProjectionTermCache {
    terms: BTreeMap<Selector, (FieldMask, u64)>,
}

impl ProjectionTermCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> ProjectionTermCache {
        ProjectionTermCache::default()
    }

    /// Drops every cached term (a full snapshot arrived).
    pub fn clear(&mut self) {
        self.terms.clear();
    }

    /// Drops the cached terms of the given selectors (a delta's changed
    /// list).
    pub fn invalidate(&mut self, changed: &[Selector]) {
        for sel in changed {
            self.terms.remove(sel);
        }
    }

    /// The masked term of one selector's current results, cached until
    /// invalidated.
    pub fn term(
        &mut self,
        sel: &Selector,
        elems: &[quickstrom_protocol::ElementState],
        mask: FieldMask,
    ) -> u64 {
        if let Some((cached_mask, term)) = self.terms.get(sel) {
            if *cached_mask == mask {
                return *term;
            }
        }
        let term = masked_query_term(sel, elems, mask);
        self.terms.insert(*sel, (mask, term));
        term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::{ElementState, SnapshotDelta};

    fn snap(pairs: &[(&str, &[&str])]) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        for (sel, texts) in pairs {
            s.insert_query(
                Selector::new(*sel),
                texts.iter().map(|t| ElementState::with_text(*t)).collect(),
            );
        }
        s
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let base = snap(&[("#a", &["x"]), (".rows", &["1", "2"]), ("#gone", &["g"])]);
        let next = snap(&[("#a", &["x"]), (".rows", &["1", "2", "3"]), ("#new", &[])]);
        let delta = SnapshotDelta::diff(&base, &next, 2);

        let mut fp = Fingerprinter::new();
        assert_eq!(fp.observe(&base, None), fingerprint_state(&base));
        let incremental = fp.observe_update(&next, &delta.clone().into());
        assert_eq!(incremental, fingerprint_state(&next));
        // Removal is covered: `#gone` left the term sum.
        assert_eq!(fp.current(), fingerprint_state(&next));
    }

    #[test]
    fn full_updates_reset_everything() {
        let a = snap(&[("#a", &["x"])]);
        let b = snap(&[("#b", &["y", "z"])]);
        let mut fp = Fingerprinter::new();
        fp.observe(&a, None);
        let got = fp.observe_update(&b, &b.clone().into());
        assert_eq!(got, fingerprint_state(&b));
    }

    #[test]
    fn spec_aware_distinguishes_only_masked_projections() {
        use quickstrom_protocol::fingerprint_state_masked;
        let masks: Arc<BTreeMap<Selector, FieldMask>> = Arc::new(
            [(
                Selector::new("#step"),
                FieldMask {
                    text: true,
                    ..FieldMask::default()
                },
            )]
            .into_iter()
            .collect(),
        );

        // Same shape bucket ("1" vs "2" are both short texts), but the
        // masked term reads the exact text: different states.
        let one = snap(&[("#step", &["1"]), ("#noise", &["a"])]);
        let two = snap(&[("#step", &["2"]), ("#noise", &["a"])]);
        let mut fp = Fingerprinter::spec_aware(Arc::clone(&masks));
        let a = fp.observe(&one, None);
        let mut fp2 = Fingerprinter::spec_aware(Arc::clone(&masks));
        let b = fp2.observe(&two, None);
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_state_masked(&one, &masks));

        // Unmasked selectors contribute nothing: noise changes are
        // invisible.
        let noisy = snap(&[("#step", &["1"]), ("#noise", &["zzz", "q"])]);
        let mut fp3 = Fingerprinter::spec_aware(Arc::clone(&masks));
        assert_eq!(fp3.observe(&noisy, None), a);
    }

    #[test]
    fn spec_aware_incremental_matches_full_recompute() {
        use quickstrom_protocol::fingerprint_state_masked;
        let masks: Arc<BTreeMap<Selector, FieldMask>> = Arc::new(
            [
                (
                    Selector::new("#a"),
                    FieldMask {
                        text: true,
                        ..FieldMask::default()
                    },
                ),
                (Selector::new(".rows"), FieldMask::default()),
            ]
            .into_iter()
            .collect(),
        );
        let base = snap(&[("#a", &["x"]), (".rows", &["1", "2"]), ("#gone", &["g"])]);
        let next = snap(&[("#a", &["y"]), (".rows", &["1", "2", "3"]), ("#new", &[])]);
        let delta = SnapshotDelta::diff(&base, &next, 2);

        let mut fp = Fingerprinter::spec_aware(Arc::clone(&masks));
        assert_eq!(
            fp.observe(&base, None),
            fingerprint_state_masked(&base, &masks)
        );
        let incremental = fp.observe_update(&next, &delta.into());
        assert_eq!(incremental, fingerprint_state_masked(&next, &masks));
    }

    #[test]
    fn projection_term_cache_tracks_invalidation_and_masks() {
        let sel = Selector::new("#a");
        let text_mask = FieldMask {
            text: true,
            ..FieldMask::default()
        };
        let base = snap(&[("#a", &["x"])]);
        let next = snap(&[("#a", &["y"])]);

        let mut cache = ProjectionTermCache::new();
        let t1 = cache.term(&sel, base.matches(&sel), text_mask);
        assert_eq!(t1, masked_query_term(&sel, base.matches(&sel), text_mask));
        // Without invalidation the stale term is served (the caller owns
        // the invalidation discipline, exactly like Fingerprinter).
        assert_eq!(cache.term(&sel, next.matches(&sel), text_mask), t1);
        cache.invalidate(&[sel]);
        let t2 = cache.term(&sel, next.matches(&sel), text_mask);
        assert_eq!(t2, masked_query_term(&sel, next.matches(&sel), text_mask));
        assert_ne!(t1, t2);
        // A different mask for the same selector recomputes.
        let all = cache.term(&sel, next.matches(&sel), FieldMask::ALL);
        assert_eq!(
            all,
            masked_query_term(&sel, next.matches(&sel), FieldMask::ALL)
        );
        cache.clear();
        assert_eq!(cache.term(&sel, base.matches(&sel), text_mask), t1);
    }

    #[test]
    fn changed_list_order_is_irrelevant() {
        let base = snap(&[("#a", &["x"]), ("#b", &["y"])]);
        let next = snap(&[("#a", &["x", "2"]), ("#b", &[])]);
        let forwards = [Selector::new("#a"), Selector::new("#b")];
        let backwards = [Selector::new("#b"), Selector::new("#a")];
        let mut f1 = Fingerprinter::new();
        f1.observe(&base, None);
        let mut f2 = f1.clone();
        assert_eq!(
            f1.observe(&next, Some(&forwards)),
            f2.observe(&next, Some(&backwards)),
        );
    }
}
