//! Incremental fingerprint maintenance: O(changed) per step.
//!
//! [`fingerprint_state`] walks every selector of a snapshot; for the
//! incremental snapshot pipeline that would throw away exactly the
//! advantage deltas buy. A [`Fingerprinter`] instead keeps the
//! per-selector [`query_term`]s of the last observed state and, when told
//! which selectors changed (a
//! [`SnapshotDelta`](quickstrom_protocol::SnapshotDelta) says exactly
//! that), subtracts the stale terms and adds the fresh ones — the
//! commutative-sum construction of the fingerprint makes the update
//! exact, not approximate, which the explore crate's proptests pin
//! against full recomputation.

use quickstrom_protocol::{fingerprint_state, query_term, Selector, StateFingerprint};
use quickstrom_protocol::{StateSnapshot, StateUpdate};
use std::collections::BTreeMap;

/// Maintains the [`StateFingerprint`] of an evolving state in O(changed)
/// per step.
#[derive(Debug, Clone, Default)]
pub struct Fingerprinter {
    /// Per-selector terms of the last observed state.
    terms: BTreeMap<Selector, u64>,
    /// The running sum of `terms`.
    current: StateFingerprint,
}

impl Fingerprinter {
    /// A fresh fingerprinter that has observed no state (its current
    /// fingerprint is [`StateFingerprint::EMPTY`]).
    #[must_use]
    pub fn new() -> Fingerprinter {
        Fingerprinter::default()
    }

    /// The fingerprint of the last observed state.
    #[must_use]
    pub fn current(&self) -> StateFingerprint {
        self.current
    }

    /// Observes the next state. `changed` lists the selectors whose query
    /// results may differ from the previous state (additions and removals
    /// included); `None` means "unknown — recompute everything".
    ///
    /// Passing a `changed` list that misses a selector whose results
    /// actually changed produces a stale fingerprint — callers should
    /// derive the list from the exact delta algebra
    /// ([`SnapshotDelta::changed_selectors`]), as
    /// [`Fingerprinter::observe_update`] does.
    ///
    /// [`SnapshotDelta::changed_selectors`]: quickstrom_protocol::SnapshotDelta::changed_selectors
    pub fn observe(
        &mut self,
        state: &StateSnapshot,
        changed: Option<&[Selector]>,
    ) -> StateFingerprint {
        match changed {
            None => {
                self.terms.clear();
                for (sel, elems) in &state.queries {
                    self.terms.insert(*sel, query_term(sel, elems));
                }
                self.current = fingerprint_state(state);
            }
            Some(selectors) => {
                for sel in selectors {
                    if let Some(old) = self.terms.remove(sel) {
                        self.current = self.current.remove_term(old);
                    }
                    if let Some(elems) = state.queries.get(sel) {
                        let term = query_term(sel, elems);
                        self.terms.insert(*sel, term);
                        self.current = self.current.add_term(term);
                    }
                }
            }
        }
        self.current
    }

    /// Observes the state produced by a [`StateUpdate`]: full snapshots
    /// recompute from scratch, deltas update only their changed selectors.
    /// `state` must be the snapshot the update resolved to.
    pub fn observe_update(
        &mut self,
        state: &StateSnapshot,
        update: &StateUpdate,
    ) -> StateFingerprint {
        match update {
            StateUpdate::Full(_) => self.observe(state, None),
            StateUpdate::Delta(delta) => self.observe(state, Some(&delta.changed_selectors())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::{ElementState, SnapshotDelta};

    fn snap(pairs: &[(&str, &[&str])]) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        for (sel, texts) in pairs {
            s.insert_query(
                Selector::new(*sel),
                texts.iter().map(|t| ElementState::with_text(*t)).collect(),
            );
        }
        s
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let base = snap(&[("#a", &["x"]), (".rows", &["1", "2"]), ("#gone", &["g"])]);
        let next = snap(&[("#a", &["x"]), (".rows", &["1", "2", "3"]), ("#new", &[])]);
        let delta = SnapshotDelta::diff(&base, &next, 2);

        let mut fp = Fingerprinter::new();
        assert_eq!(fp.observe(&base, None), fingerprint_state(&base));
        let incremental = fp.observe_update(&next, &delta.clone().into());
        assert_eq!(incremental, fingerprint_state(&next));
        // Removal is covered: `#gone` left the term sum.
        assert_eq!(fp.current(), fingerprint_state(&next));
    }

    #[test]
    fn full_updates_reset_everything() {
        let a = snap(&[("#a", &["x"])]);
        let b = snap(&[("#b", &["y", "z"])]);
        let mut fp = Fingerprinter::new();
        fp.observe(&a, None);
        let got = fp.observe_update(&b, &b.clone().into());
        assert_eq!(got, fingerprint_state(&b));
    }

    #[test]
    fn changed_list_order_is_irrelevant() {
        let base = snap(&[("#a", &["x"]), ("#b", &["y"])]);
        let next = snap(&[("#a", &["x", "2"]), ("#b", &[])]);
        let forwards = [Selector::new("#a"), Selector::new("#b")];
        let backwards = [Selector::new("#b"), Selector::new("#a")];
        let mut f1 = Fingerprinter::new();
        f1.observe(&base, None);
        let mut f2 = f1.clone();
        assert_eq!(
            f1.observe(&next, Some(&forwards)),
            f2.observe(&next, Some(&backwards)),
        );
    }
}
