//! Coverage accounting: which abstract states a sweep has visited.
//!
//! A [`CoverageMap`] is a set of distinct [`StateFingerprint`]s plus the
//! set of observed fingerprint *transitions* (directed edges). Every run
//! builds its own [`RunCoverage`] in isolation — this is what keeps the
//! parallel runtime deterministic: a run's behaviour depends only on its
//! own trace, never on what concurrent runs discovered — and the checker
//! merges the per-run maps into a property-level map in canonical
//! run-index order. Since merging is a set union plus count addition, the
//! merged numbers are identical for `jobs = 1` and `jobs = N`.

use crate::fingerprinter::Fingerprinter;
use quickstrom_protocol::{StateFingerprint, Symbol};
use std::collections::{BTreeMap, BTreeSet};

/// Distinct fingerprints and fingerprint transitions observed by one run,
/// one property, or one sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    states: BTreeSet<StateFingerprint>,
    edges: BTreeSet<(StateFingerprint, StateFingerprint)>,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records a visited state; returns `true` when it was new to this
    /// map.
    pub fn insert_state(&mut self, fp: StateFingerprint) -> bool {
        self.states.insert(fp)
    }

    /// Records a transition; returns `true` when it was new to this map.
    pub fn insert_edge(&mut self, from: StateFingerprint, to: StateFingerprint) -> bool {
        self.edges.insert((from, to))
    }

    /// Has this state been visited?
    #[must_use]
    pub fn contains_state(&self, fp: StateFingerprint) -> bool {
        self.states.contains(&fp)
    }

    /// The number of distinct states visited.
    #[must_use]
    pub fn distinct_states(&self) -> usize {
        self.states.len()
    }

    /// The number of distinct transitions observed.
    #[must_use]
    pub fn distinct_edges(&self) -> usize {
        self.edges.len()
    }

    /// Set union — commutative and associative, so any merge order
    /// produces the same map.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.states.extend(other.states.iter().copied());
        self.edges.extend(other.edges.iter().copied());
    }
}

/// The summary a [`PropertyReport`] carries: the coverage numbers of one
/// property check, plus how the trace corpus was used to produce them.
///
/// [`PropertyReport`]: ../quickstrom_checker/report/struct.PropertyReport.html
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Distinct state fingerprints reached across the merged runs.
    pub distinct_states: usize,
    /// Distinct fingerprint transitions observed across the merged runs.
    pub distinct_edges: usize,
    /// Entries in the trace corpus when the check finished.
    pub corpus_size: usize,
    /// Runs that were seeded with a corpus prefix (replay-then-extend).
    pub corpus_replays: usize,
}

impl CoverageStats {
    /// Component-wise accumulation across properties. Distinct counts are
    /// *summed* — two properties may well visit overlapping states, so
    /// this is an upper bound on whole-spec coverage, reported per
    /// property where exactness matters.
    pub fn absorb(&mut self, other: CoverageStats) {
        self.distinct_states += other.distinct_states;
        self.distinct_edges += other.distinct_edges;
        self.corpus_size += other.corpus_size;
        self.corpus_replays += other.corpus_replays;
    }
}

/// What happened when an action name was tried from a given state: how
/// often, and how often it actually changed the abstract state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Times the action was performed from the state.
    pub tried: u32,
    /// Of those, times the fingerprint changed (the action was
    /// *productive* — a self-looping click is not).
    pub productive: u32,
}

/// Run-wide statistics for one action name, for the dead-name signal.
#[derive(Debug, Clone, Default)]
struct NameStats {
    tried: u32,
    productive: u32,
    /// Distinct target indices tried. Convicting a name as a run-wide
    /// dud requires evidence across several *instances*: a single-target
    /// action whose productivity is state-dependent (submit on a blank
    /// form) must not be buried by a few early failures, while a
    /// hundred-instance grid action that self-loops everywhere should.
    instances: BTreeSet<u32>,
}

/// Everything one run observes about coverage, accumulated step by step
/// as states arrive and actions are accepted.
#[derive(Debug, Clone, Default)]
pub struct RunCoverage {
    /// The fingerprints and edges this run visited.
    pub map: CoverageMap,
    /// `(script length, fingerprint)` at the first visit of each
    /// run-novel fingerprint, in visit order. The script length is the
    /// number of accepted actions when the state was reached — the replay
    /// prefix that leads back to it.
    pub first_visits: Vec<(usize, StateFingerprint)>,
    /// Per-`(state fingerprint, action name)` statistics — the primary
    /// novelty signal: `(times tried, times it changed the fingerprint)`.
    pairs_name: BTreeMap<(StateFingerprint, Symbol), PairStats>,
    /// Per-name statistics across the whole run — the generalisation of
    /// the self-loop signal: an action that never changed the state
    /// *anywhere* is probably not going to change it here either.
    names: BTreeMap<Symbol, NameStats>,
    /// How often each `(state fingerprint, action name, target index)`
    /// triple was performed — the secondary signal. The target index
    /// matters on wide DOMs: selecting row 5 and selecting row 80 of a
    /// grid are different explorations even though both are `selectRow!`.
    pairs_instance: BTreeMap<(StateFingerprint, Symbol, u32), u32>,
    /// Incremental fingerprint of the evolving state.
    fingerprinter: Fingerprinter,
    /// The previous state's fingerprint (edge source), once a state has
    /// been observed.
    last: Option<StateFingerprint>,
}

impl RunCoverage {
    /// Fresh, empty coverage for a new run.
    #[must_use]
    pub fn new() -> RunCoverage {
        RunCoverage::default()
    }

    /// Fresh coverage whose fingerprints come from the given
    /// fingerprinter — e.g. [`Fingerprinter::spec_aware`] to count only
    /// states the specification can distinguish.
    #[must_use]
    pub fn with_fingerprinter(fingerprinter: Fingerprinter) -> RunCoverage {
        RunCoverage {
            fingerprinter,
            ..RunCoverage::default()
        }
    }

    /// The incremental fingerprinter (the checker feeds it one
    /// [`StateUpdate`](quickstrom_protocol::StateUpdate) per step).
    pub fn fingerprinter(&mut self) -> &mut Fingerprinter {
        &mut self.fingerprinter
    }

    /// The fingerprint of the most recently observed state.
    #[must_use]
    pub fn current(&self) -> StateFingerprint {
        self.fingerprinter.current()
    }

    /// Records the arrival of a state with the given fingerprint, reached
    /// after `script_len` accepted actions. Returns `true` when the state
    /// was new to this run.
    pub fn observe_state(&mut self, fp: StateFingerprint, script_len: usize) -> bool {
        let novel = self.map.insert_state(fp);
        if novel {
            self.first_visits.push((script_len, fp));
        }
        if let Some(prev) = self.last {
            if prev != fp {
                self.map.insert_edge(prev, fp);
            }
        }
        self.last = Some(fp);
        novel
    }

    /// Records that the named action was performed against target
    /// `index` in the state with fingerprint `fp`. Whether it was
    /// *productive* — actually moved the application to a different
    /// abstract state — is read off the current fingerprint, which by
    /// call order (states are ingested before the action is noted) is the
    /// post-action state.
    pub fn note_action(&mut self, fp: StateFingerprint, action: Symbol, index: u32) {
        let productive = self.current() != fp;
        let stats = self.pairs_name.entry((fp, action)).or_default();
        stats.tried += 1;
        stats.productive += u32::from(productive);
        let global = self.names.entry(action).or_default();
        global.tried += 1;
        global.productive += u32::from(productive);
        global.instances.insert(index);
        *self.pairs_instance.entry((fp, action, index)).or_default() += 1;
    }

    /// The `(tried, productive)` statistics of the named action in the
    /// state with fingerprint `fp` during this run.
    #[must_use]
    pub fn pair_stats(&self, fp: StateFingerprint, action: Symbol) -> PairStats {
        self.pairs_name
            .get(&(fp, action))
            .copied()
            .unwrap_or_default()
    }

    /// How often the named action has been performed (against any target)
    /// in the state with fingerprint `fp` during this run.
    #[must_use]
    pub fn pair_count(&self, fp: StateFingerprint, action: Symbol) -> u32 {
        self.pair_stats(fp, action).tried
    }

    /// Is the named action a known dud — tried at least six times this
    /// run, across at least three distinct target instances, without ever
    /// changing the abstract state anywhere?
    #[must_use]
    pub fn name_is_dead(&self, action: Symbol) -> bool {
        self.names
            .get(&action)
            .is_some_and(|s| s.tried >= 6 && s.productive == 0 && s.instances.len() >= 3)
    }

    /// How often the named action has been performed against target
    /// `index` in the state with fingerprint `fp` during this run.
    #[must_use]
    pub fn instance_count(&self, fp: StateFingerprint, action: Symbol, index: u32) -> u32 {
        self.pairs_instance
            .get(&(fp, action, index))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(raw: u64) -> StateFingerprint {
        StateFingerprint::from_raw(raw)
    }

    #[test]
    fn map_counts_distinct_states_and_edges() {
        let mut m = CoverageMap::new();
        assert!(m.insert_state(fp(1)));
        assert!(!m.insert_state(fp(1)));
        assert!(m.insert_state(fp(2)));
        assert!(m.insert_edge(fp(1), fp(2)));
        assert!(!m.insert_edge(fp(1), fp(2)));
        assert!(m.insert_edge(fp(2), fp(1)));
        assert_eq!(m.distinct_states(), 2);
        assert_eq!(m.distinct_edges(), 2);
        assert!(m.contains_state(fp(1)));
        assert!(!m.contains_state(fp(3)));
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = CoverageMap::new();
        a.insert_state(fp(1));
        a.insert_edge(fp(1), fp(2));
        let mut b = CoverageMap::new();
        b.insert_state(fp(2));
        b.insert_state(fp(1));
        b.insert_edge(fp(2), fp(3));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.distinct_states(), 2);
        assert_eq!(ab.distinct_edges(), 2);
    }

    #[test]
    fn run_coverage_tracks_first_visits_and_edges() {
        let mut rc = RunCoverage::new();
        assert!(rc.observe_state(fp(10), 0));
        assert!(rc.observe_state(fp(20), 1));
        assert!(!rc.observe_state(fp(10), 2)); // revisit
        assert_eq!(rc.first_visits, vec![(0, fp(10)), (1, fp(20))]);
        assert_eq!(rc.map.distinct_states(), 2);
        // 10→20, 20→10; self-loops (state unchanged) are not edges.
        assert_eq!(rc.map.distinct_edges(), 2);
        assert!(!rc.observe_state(fp(10), 3));
        assert_eq!(rc.map.distinct_edges(), 2);
    }

    #[test]
    fn pair_counts_accumulate() {
        let mut rc = RunCoverage::new();
        let click = Symbol::intern("click!");
        let other = Symbol::intern("other!");
        assert_eq!(rc.pair_count(fp(1), click), 0);
        rc.note_action(fp(1), click, 0);
        rc.note_action(fp(1), click, 0);
        rc.note_action(fp(2), click, 0);
        rc.note_action(fp(1), click, 7);
        assert_eq!(rc.pair_count(fp(1), click), 3);
        assert_eq!(rc.instance_count(fp(1), click, 0), 2);
        assert_eq!(rc.instance_count(fp(1), click, 7), 1);
        assert_eq!(rc.pair_count(fp(2), click), 1);
        assert_eq!(rc.pair_count(fp(1), other), 0);
        assert_eq!(rc.instance_count(fp(1), other, 0), 0);
    }

    #[test]
    fn stats_absorb_sums() {
        let mut total = CoverageStats::default();
        total.absorb(CoverageStats {
            distinct_states: 3,
            distinct_edges: 5,
            corpus_size: 2,
            corpus_replays: 1,
        });
        total.absorb(CoverageStats {
            distinct_states: 4,
            distinct_edges: 1,
            corpus_size: 0,
            corpus_replays: 0,
        });
        assert_eq!(total.distinct_states, 7);
        assert_eq!(total.distinct_edges, 6);
        assert_eq!(total.corpus_size, 2);
        assert_eq!(total.corpus_replays, 1);
    }
}
