//! The trace corpus: interesting action prefixes, kept for
//! replay-then-extend scheduling.
//!
//! When a run reaches a fingerprint no earlier (merged) run has seen, the
//! action prefix that got there is worth more than the rest of that run:
//! replaying it puts a later run back at the frontier with its whole
//! remaining budget available for *extension*. The corpus stores one
//! shortest-known prefix per novel fingerprint, keeps the deepest
//! (longest) prefixes when full, and schedules them deterministically by
//! run index — no randomness, no wall-clock, so `jobs = N` scheduling is
//! bit-identical to sequential scheduling.

use quickstrom_protocol::{ActionInstance, StateFingerprint};
use std::collections::BTreeSet;

/// One corpus entry: the action prefix that first reached a novel
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The accepted actions, in order, up to the novel state.
    pub script: Vec<ActionInstance>,
    /// The fingerprint the prefix reached.
    pub fingerprint: StateFingerprint,
}

/// A bounded store of interesting action prefixes.
#[derive(Debug, Clone)]
pub struct TraceCorpus {
    /// Entries sorted by descending script length (deepest first), ties
    /// by fingerprint — a deterministic total order.
    entries: Vec<CorpusEntry>,
    /// Fingerprints currently represented (one entry per fingerprint).
    known: BTreeSet<StateFingerprint>,
    cap: usize,
}

/// The default corpus capacity.
pub const DEFAULT_CORPUS_CAP: usize = 128;

/// Out of this many scheduled runs, one explores fresh (no prefix) — the
/// corpus must keep competing against unbiased exploration, or an early
/// frontier would lock the whole budget onto one region.
const FRESH_EVERY: usize = 8;

/// Replays round-robin over at most this many of the deepest eligible
/// entries (see [`TraceCorpus::schedule`]).
const REPLAY_POOL: usize = 8;

impl TraceCorpus {
    /// An empty corpus holding at most `cap` entries.
    #[must_use]
    pub fn with_capacity(cap: usize) -> TraceCorpus {
        TraceCorpus {
            entries: Vec::new(),
            known: BTreeSet::new(),
            cap: cap.max(1),
        }
    }

    /// The number of stored prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no prefix is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a prefix that reached `fingerprint`. Returns `true` when it
    /// was admitted: the script is non-empty and either the fingerprint
    /// is not yet represented, the new prefix is *shorter* than the
    /// represented one (replays re-walk known states, so a shorter route
    /// to the same place makes every future replay cheaper), or (when
    /// full) the prefix is deep enough to evict the shallowest entry.
    pub fn add(&mut self, script: Vec<ActionInstance>, fingerprint: StateFingerprint) -> bool {
        if script.is_empty() {
            return false;
        }
        if self.known.contains(&fingerprint) {
            let existing = self
                .entries
                .iter()
                .position(|e| e.fingerprint == fingerprint)
                .expect("known fingerprints have an entry");
            if self.entries[existing].script.len() <= script.len() {
                return false;
            }
            self.entries.remove(existing);
            self.known.remove(&fingerprint);
        }
        let entry = CorpusEntry {
            script,
            fingerprint,
        };
        // Descending length, ascending fingerprint: a deterministic
        // total order with the deepest prefixes first.
        let key = |e: &CorpusEntry| (usize::MAX - e.script.len(), e.fingerprint);
        let pos = self
            .entries
            .binary_search_by_key(&key(&entry), key)
            .unwrap_or_else(|p| p);
        if self.entries.len() >= self.cap {
            if pos >= self.entries.len() {
                return false; // shallower than everything we hold
            }
            let evicted = self.entries.pop().expect("cap >= 1");
            self.known.remove(&evicted.fingerprint);
        }
        self.known.insert(entry.fingerprint);
        self.entries.insert(pos.min(self.entries.len()), entry);
        true
    }

    /// The replay prefix for the run at `run_index`, or `None` when the
    /// run should explore fresh.
    ///
    /// Deterministic in `(corpus contents, run_index, max_prefix)`: every
    /// `FRESH_EVERY`th (eighth) run explores fresh; the others alternate between
    /// two replay pools over the entries whose prefix leaves at least
    /// half of `max_prefix` unspent (a prefix that eats the whole action
    /// budget would replay without ever extending) —
    ///
    /// * a **frontier pool**: the `REPLAY_POOL` (eight) *deepest* eligible
    ///   entries. This is what makes corridors crack: most corpus
    ///   entries are shallow variations near the start state, and
    ///   round-robining over all of them would almost never resume from
    ///   the frontier;
    /// * a **breadth pool**: every eligible entry. This is what pays on
    ///   wide state spaces, where extending *many different* mid-depth
    ///   states covers more than hammering the deepest few.
    #[must_use]
    pub fn schedule(&self, run_index: usize, max_prefix: usize) -> Option<&CorpusEntry> {
        if self.entries.is_empty() || run_index.is_multiple_of(FRESH_EVERY) {
            return None;
        }
        let eligible: Vec<&CorpusEntry> = self
            .entries
            .iter()
            .filter(|e| e.script.len() * 2 <= max_prefix)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let pool = if run_index % 4 == 2 {
            &eligible[..REPLAY_POOL.min(eligible.len())]
        } else {
            &eligible[..]
        };
        Some(pool[run_index % pool.len()])
    }
}

impl Default for TraceCorpus {
    fn default() -> Self {
        TraceCorpus::with_capacity(DEFAULT_CORPUS_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::ActionKind;

    fn fp(raw: u64) -> StateFingerprint {
        StateFingerprint::from_raw(raw)
    }

    fn script(len: usize) -> Vec<ActionInstance> {
        (0..len)
            .map(|_| ActionInstance::untargeted("noop!", ActionKind::Noop))
            .collect()
    }

    #[test]
    fn one_entry_per_fingerprint_preferring_shorter_routes() {
        let mut c = TraceCorpus::with_capacity(8);
        assert!(c.add(script(3), fp(1)));
        assert!(!c.add(script(5), fp(1)), "longer route to a known place");
        assert!(!c.add(Vec::new(), fp(2)), "empty prefixes are useless");
        assert!(c.add(script(5), fp(2)));
        assert_eq!(c.len(), 2);
        // A *shorter* route to a represented fingerprint replaces it —
        // every future replay of that entry gets cheaper.
        assert!(c.add(script(2), fp(2)));
        assert_eq!(c.len(), 2);
        let shortest = c
            .entries
            .iter()
            .find(|e| e.fingerprint == fp(2))
            .expect("still represented");
        assert_eq!(shortest.script.len(), 2);
    }

    #[test]
    fn entries_sort_deepest_first_and_evict_shallowest() {
        let mut c = TraceCorpus::with_capacity(3);
        assert!(c.add(script(2), fp(1)));
        assert!(c.add(script(6), fp(2)));
        assert!(c.add(script(4), fp(3)));
        // Full. A deeper prefix evicts the shallowest…
        assert!(c.add(script(5), fp(4)));
        assert_eq!(c.len(), 3);
        assert!(!c.known.contains(&fp(1)), "shallowest entry evicted");
        // …and a shallower one is rejected outright.
        assert!(!c.add(script(1), fp(5)));
        // The evicted fingerprint may be re-offered later.
        assert!(c.add(script(7), fp(1)));
    }

    #[test]
    fn scheduling_is_deterministic_and_mixes_in_fresh_runs() {
        let mut c = TraceCorpus::with_capacity(8);
        assert_eq!(c.schedule(1, 40), None, "empty corpus: always fresh");
        c.add(script(10), fp(1));
        c.add(script(6), fp(2));
        assert!(c.schedule(0, 40).is_none(), "every 8th run is fresh");
        assert!(c.schedule(8, 40).is_none());
        let a = c.schedule(1, 40).expect("replay run");
        let b = c.schedule(1, 40).expect("same index, same entry");
        assert_eq!(a, b);
        // Round-robin across indices covers both entries.
        let picked: BTreeSet<StateFingerprint> = (1..8)
            .filter_map(|i| c.schedule(i, 40))
            .map(|e| e.fingerprint)
            .collect();
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn scheduling_skips_prefixes_that_eat_the_budget() {
        let mut c = TraceCorpus::with_capacity(8);
        c.add(script(30), fp(1));
        assert!(
            c.schedule(1, 40).is_none(),
            "a 30-action prefix leaves no room to extend a 40-action run"
        );
        c.add(script(12), fp(2));
        assert_eq!(c.schedule(1, 40).expect("eligible").fingerprint, fp(2));
    }
}
