//! # quickstrom-explore
//!
//! Coverage-guided exploration for the Quickstrom checker.
//!
//! Quickstrom's checker (§5.1) picks actions with a fixed heuristic and
//! has no notion of which application states a sweep has already
//! covered — extra test budget re-explores the same shallow states. This
//! crate supplies the missing pieces:
//!
//! * **State fingerprints** — snapshots abstracted into deterministic
//!   64-bit shape hashes ([`StateFingerprint`], computed in the protocol
//!   crate), maintained incrementally in O(changed) per step by a
//!   [`Fingerprinter`] fed with the snapshot pipeline's
//!   [`SnapshotDelta`](quickstrom_protocol::SnapshotDelta)s.
//! * **Coverage maps** — per-run and per-property sets of distinct
//!   fingerprints and fingerprint transitions ([`CoverageMap`],
//!   [`RunCoverage`], summarised as [`CoverageStats`]), merged
//!   deterministically in run-index order by the checker's parallel
//!   runtime.
//! * **Pluggable strategies** — the [`Strategy`] trait with [`Uniform`],
//!   [`LeastTried`] and the coverage-guided [`Novelty`] implementations,
//!   selected by [`SelectionStrategy`].
//! * **A trace corpus** — interesting action prefixes (ones that reached
//!   novel fingerprints) stored in a [`TraceCorpus`] and scheduled for
//!   replay-then-extend runs, deterministically by run index.
//!
//! Everything here is deterministic by construction: no wall clock, no
//! process-local hashing, no cross-run shared mutable state. A fixed
//! `(strategy, seed)` produces bit-identical coverage for `jobs = 1` and
//! `jobs = N` — the invariant `crates/bench/tests/coverage_determinism.rs`
//! pins. See DESIGN.md, *Exploration engine*.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod coverage;
pub mod fingerprinter;
pub mod strategy;

pub use corpus::{CorpusEntry, TraceCorpus, DEFAULT_CORPUS_CAP};
pub use coverage::{CoverageMap, CoverageStats, RunCoverage};
pub use fingerprinter::{Fingerprinter, ProjectionTermCache};
pub use quickstrom_protocol::{fingerprint_state, StateFingerprint};
pub use strategy::{
    target_index, Candidate, LeastTried, Novelty, SelectionStrategy, Strategy, StrategyCtx, Uniform,
};
