//! Pluggable action-selection strategies.
//!
//! The paper's checker "makes a completely random selection from the set
//! of allowable actions" and names more targeted selection as future work
//! (§5.1). The checker delegates that choice to a [`Strategy`]: given the
//! enabled candidates, the run's coverage observations and an RNG, pick
//! one. Three strategies ship —
//!
//! * [`Uniform`] — the paper's behaviour: uniform over all enabled
//!   instances.
//! * [`LeastTried`] — uniform over the instances of the least-performed
//!   action *names* in this run, keeping rare interactions (toggle-all,
//!   edit commits) in rotation instead of drowning them in high-fan-out
//!   ones.
//! * [`Novelty`] — coverage-guided: prefer actions untried *from the
//!   current state fingerprint*, then pairs known to change the state,
//!   and demote run-wide duds (names that self-looped across several
//!   instances) and known self-loops. Paired with the
//!   [`TraceCorpus`](crate::TraceCorpus)'s replay-then-extend scheduling
//!   this spends budget at the coverage frontier instead of re-exploring
//!   shallow states.
//!
//! Strategies must be deterministic functions of `(context, candidates,
//! RNG)` — no wall clock, no global mutable state — because the parallel
//! runtime replays them from per-run seeds and expects bit-identical
//! choices on every worker (see DESIGN.md, *Exploration engine*).

use crate::coverage::RunCoverage;
use quickstrom_protocol::{ActionInstance, StateFingerprint, Symbol};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// One performable action instance with its interned name (the checker
/// interns once per enabled-action enumeration, so strategies compare
/// machine words, not strings).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The concrete instance (target element, generated input, …).
    pub action: ActionInstance,
    /// The interned action name.
    pub name: Symbol,
}

/// The target element index of an action (0 for untargeted actions) —
/// the third component of the novelty triple. The single definition of
/// the index encoding, shared by candidates and by the checker's
/// prefix-replay bookkeeping.
#[must_use]
pub fn target_index(action: &ActionInstance) -> u32 {
    action.target.as_ref().map_or(0, |(_, i)| *i as u32)
}

impl Candidate {
    /// The target element index (0 for untargeted actions) — see
    /// [`target_index`].
    #[must_use]
    pub fn target_index(&self) -> u32 {
        target_index(&self.action)
    }
}

/// Everything a [`Strategy`] may consult when choosing.
#[derive(Debug)]
pub struct StrategyCtx<'a> {
    /// The fingerprint of the state the choice is made in.
    pub current: StateFingerprint,
    /// Per-action-name acceptance counts for this run.
    pub action_counts: &'a BTreeMap<Symbol, usize>,
    /// The run's coverage observations (fingerprints, transitions,
    /// per-`(state, action)` counts).
    pub coverage: &'a RunCoverage,
}

/// A pluggable action-selection strategy.
///
/// `pick` returns an index into `candidates` (which is never empty).
/// Implementations must be deterministic given the context and RNG.
pub trait Strategy: Send {
    /// The strategy's display name.
    fn name(&self) -> &'static str;

    /// Chooses one of the candidates.
    fn pick(&mut self, ctx: &StrategyCtx<'_>, candidates: &[Candidate], rng: &mut StdRng) -> usize;
}

impl fmt::Debug for dyn Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

/// Uniform over all enabled instances — the paper's behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Strategy for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn pick(
        &mut self,
        _ctx: &StrategyCtx<'_>,
        candidates: &[Candidate],
        rng: &mut StdRng,
    ) -> usize {
        rng.gen_range(0..candidates.len())
    }
}

/// Picks uniformly among the indices minimising `score`, consuming
/// exactly one RNG draw — the same consumption pattern for every
/// strategy, so switching strategies never desynchronises input
/// generation.
fn pick_min_by<K: Ord>(
    candidates: &[Candidate],
    rng: &mut StdRng,
    mut score: impl FnMut(&Candidate) -> K,
) -> usize {
    let mut best: Vec<usize> = Vec::with_capacity(candidates.len());
    let mut best_key: Option<K> = None;
    for (i, c) in candidates.iter().enumerate() {
        let key = score(c);
        match &best_key {
            Some(k) if *k < key => {}
            Some(k) if *k == key => best.push(i),
            _ => {
                best_key = Some(key);
                best.clear();
                best.push(i);
            }
        }
    }
    best[rng.gen_range(0..best.len())]
}

/// Uniform over the instances of the least-performed action names (the
/// "more targeted" selection §5.1 anticipates).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastTried;

impl Strategy for LeastTried {
    fn name(&self) -> &'static str {
        "least-tried"
    }

    fn pick(&mut self, ctx: &StrategyCtx<'_>, candidates: &[Candidate], rng: &mut StdRng) -> usize {
        pick_min_by(candidates, rng, |c| {
            ctx.action_counts.get(&c.name).copied().unwrap_or(0)
        })
    }
}

/// Coverage-guided selection, in tiers (see `pick`): untried-from-here
/// first, then pairs that changed the state before, then run-wide duds,
/// then known self-loops; uniform *within* a tier.
///
/// The within-tier uniformity is load-bearing, not decoration: an
/// earlier design minimised exact per-pair counts, which made the policy
/// a near-deterministic function of the state — every run of a sweep
/// walked nearly the same path and the sweep-level union of visited
/// states collapsed to one trajectory. Coarse tiers keep each run's
/// random walk diverse (each run has its own seed) while still steering
/// budget away from known-wasteful repetitions, and the trace corpus
/// then turns the divergent frontiers into replay seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Novelty;

impl Strategy for Novelty {
    fn name(&self) -> &'static str {
        "novelty"
    }

    fn pick(&mut self, ctx: &StrategyCtx<'_>, candidates: &[Candidate], rng: &mut StdRng) -> usize {
        pick_min_by(candidates, rng, |c| {
            let stats = ctx.coverage.pair_stats(ctx.current, c.name);
            // Tier 0: untried from this state (and not a known dud).
            // Tier 1: tried from here and known productive. Tier 2:
            // untried here but a global dud — it never moved the state
            // from anywhere, so spend elsewhere first; local evidence
            // (tiers 0/1) always outranks the global prior, which keeps
            // state-dependent actions (productive only under the right
            // precondition) from being buried by early failures. Tier 3:
            // tried from here and it never moved this state (a
            // self-looping click — repeating it burns budget).
            let tier: u8 = if stats.tried == 0 {
                if ctx.coverage.name_is_dead(c.name) {
                    2
                } else {
                    0
                }
            } else if stats.productive > 0 {
                1
            } else {
                3
            };
            let instance_tried = ctx
                .coverage
                .instance_count(ctx.current, c.name, c.target_index())
                > 0;
            (tier, u8::from(instance_tried))
        })
    }
}

/// How the checker picks among enabled action instances — the named,
/// serialisable selector for the [`Strategy`] implementations above
/// (checker options need `Copy + Eq`; boxed strategies are built per run
/// via [`SelectionStrategy::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Uniform over all enabled instances — the paper's behaviour.
    #[default]
    UniformRandom,
    /// Uniform over the instances of the least-performed action names.
    LeastTried,
    /// Coverage-guided: least-tried conditioned on the current state
    /// fingerprint, with corpus-seeded replay-then-extend runs.
    Novelty,
}

impl SelectionStrategy {
    /// Builds the strategy implementation (one per run).
    #[must_use]
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            SelectionStrategy::UniformRandom => Box::new(Uniform),
            SelectionStrategy::LeastTried => Box::new(LeastTried),
            SelectionStrategy::Novelty => Box::new(Novelty),
        }
    }

    /// The strategy's display name (also the `--strategy` flag syntax).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::UniformRandom => "uniform",
            SelectionStrategy::LeastTried => "least-tried",
            SelectionStrategy::Novelty => "novelty",
        }
    }

    /// Parses a `--strategy` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<SelectionStrategy> {
        match s {
            "uniform" | "uniform-random" => Some(SelectionStrategy::UniformRandom),
            "least-tried" => Some(SelectionStrategy::LeastTried),
            "novelty" => Some(SelectionStrategy::Novelty),
            _ => None,
        }
    }

    /// Does this strategy schedule corpus replays between runs?
    #[must_use]
    pub fn uses_corpus(self) -> bool {
        matches!(self, SelectionStrategy::Novelty)
    }

    /// Does [`Strategy::pick`] read the coverage map or the current state
    /// fingerprint? [`Uniform`] reads nothing from the context and
    /// [`LeastTried`] only the per-name action counts, so a driver that
    /// owns action selection can skip fingerprinting and coverage
    /// bookkeeping entirely for those strategies (the evaluator stage
    /// still maintains the report's coverage).
    #[must_use]
    pub fn needs_coverage(self) -> bool {
        matches!(self, SelectionStrategy::Novelty)
    }

    /// Every shipped strategy, in comparison order (the coverage-compare
    /// harness sweeps these).
    pub const ALL: [SelectionStrategy; 3] = [
        SelectionStrategy::UniformRandom,
        SelectionStrategy::LeastTried,
        SelectionStrategy::Novelty,
    ];
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quickstrom_protocol::ActionKind;
    use rand::SeedableRng;

    fn candidate(name: &str) -> Candidate {
        Candidate {
            action: ActionInstance::untargeted(name, ActionKind::Noop),
            name: Symbol::intern(name),
        }
    }

    fn ctx<'a>(
        current: StateFingerprint,
        counts: &'a BTreeMap<Symbol, usize>,
        coverage: &'a RunCoverage,
    ) -> StrategyCtx<'a> {
        StrategyCtx {
            current,
            action_counts: counts,
            coverage,
        }
    }

    #[test]
    fn uniform_covers_all_candidates() {
        let counts = BTreeMap::new();
        let coverage = RunCoverage::new();
        let c = ctx(StateFingerprint::EMPTY, &counts, &coverage);
        let candidates = [candidate("a!"), candidate("b!"), candidate("c!")];
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[Uniform.pick(&c, &candidates, &mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn least_tried_prefers_the_rare_name() {
        let mut counts = BTreeMap::new();
        counts.insert(Symbol::intern("a!"), 5);
        counts.insert(Symbol::intern("b!"), 1);
        let coverage = RunCoverage::new();
        let c = ctx(StateFingerprint::EMPTY, &counts, &coverage);
        let candidates = [candidate("a!"), candidate("b!"), candidate("a!")];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(LeastTried.pick(&c, &candidates, &mut rng), 1);
        }
    }

    #[test]
    fn novelty_prefers_untried_from_here() {
        let here = StateFingerprint::from_raw(42);
        let counts = BTreeMap::new();
        // `b!` was tried from `here` (and self-looped); `a!` was not.
        let mut coverage = RunCoverage::new();
        coverage.note_action(here, Symbol::intern("b!"), 0);
        let c = ctx(here, &counts, &coverage);
        let candidates = [candidate("a!"), candidate("b!")];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(Novelty.pick(&c, &candidates, &mut rng), 0);
        }
        // In a state nobody has acted from, both are untried: the choice
        // is uniform and covers both.
        let elsewhere = ctx(StateFingerprint::from_raw(77), &counts, &coverage);
        let mut seen = [false; 2];
        for _ in 0..32 {
            seen[Novelty.pick(&elsewhere, &candidates, &mut rng)] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn novelty_prefers_productive_pairs_over_self_loops() {
        let here = StateFingerprint::from_raw(42);
        let there = StateFingerprint::from_raw(43);
        let counts = BTreeMap::new();
        let mut coverage = RunCoverage::new();
        // `a!` moved the state (the fingerprinter shows a different
        // current state when the action is noted); `b!` self-looped.
        coverage.fingerprinter().observe(
            &{
                let mut s = quickstrom_protocol::StateSnapshot::new();
                s.insert_query("#x", vec![]);
                s
            },
            None,
        );
        let current = coverage.current();
        assert_ne!(current, here, "noted state differs from current");
        coverage.note_action(here, Symbol::intern("a!"), 0); // productive
        coverage.note_action(there, Symbol::intern("b!"), 0); // b! from there: productive
                                                              // Make `b!` a self-loop from `here`: note it with fp == current.
        coverage.note_action(current, Symbol::intern("b!"), 0);
        let c = ctx(current, &counts, &coverage);
        // From `current`: `a!` untried (tier 0) beats `b!` self-looped
        // (tier 3).
        let candidates = [candidate("b!"), candidate("a!")];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(Novelty.pick(&c, &candidates, &mut rng), 1);
        }
    }

    #[test]
    fn novelty_demotes_run_wide_dead_names() {
        let counts = BTreeMap::new();
        let mut coverage = RunCoverage::new();
        let dud = Symbol::intern("dud!");
        // Six self-looping tries across three distinct instances: a
        // run-wide dud (everything is noted against the current
        // fingerprint, so nothing ever counts as productive).
        let fp0 = coverage.current();
        for index in [0u32, 1, 2, 0, 1, 2] {
            coverage.note_action(fp0, dud, index);
        }
        assert!(coverage.name_is_dead(dud));
        assert!(!coverage.name_is_dead(Symbol::intern("fresh!")));
        // From an unexplored state, an untried clean name beats the dud.
        let elsewhere = ctx(StateFingerprint::from_raw(99), &counts, &coverage);
        let candidates = [candidate("dud!"), candidate("fresh!")];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(Novelty.pick(&elsewhere, &candidates, &mut rng), 1);
        }
    }

    #[test]
    fn single_instance_names_are_never_convicted() {
        let mut coverage = RunCoverage::new();
        let submit = Symbol::intern("submit!");
        let fp0 = coverage.current();
        for _ in 0..10 {
            coverage.note_action(fp0, submit, 0); // always the same target
        }
        assert!(
            !coverage.name_is_dead(submit),
            "state-dependent single-target actions must stay in rotation"
        );
    }

    #[test]
    fn selection_strategy_round_trips_names() {
        for s in SelectionStrategy::ALL {
            assert_eq!(SelectionStrategy::parse(s.name()), Some(s));
            assert_eq!(s.build().name(), s.name());
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(SelectionStrategy::parse("nope"), None);
        assert!(SelectionStrategy::Novelty.uses_corpus());
        assert!(!SelectionStrategy::LeastTried.uses_corpus());
    }
}
