//! Property-based tests for the snapshot algebra: `diff`/`apply`
//! round-trips over generated snapshots, symmetry and agreement of the
//! change-detection primitives, and wire-size sanity.
//!
//! These are the laws the incremental pipeline rests on: the executor
//! ships `diff(base, next)` and the checker applies it onto its copy of
//! `base`, so the round-trip must reproduce `next` *exactly* — any slack
//! here would surface as delta-mode traces diverging from full-mode
//! traces (which `crates/bench/tests/differential_delta.rs` pins at the
//! checker level).

use proptest::prelude::*;
use quickstrom_protocol::{ElementState, Selector, SnapshotDelta, StateSnapshot, Symbol};

const SELECTORS: &[&str] = &[
    "#a",
    "#b",
    ".rows",
    ".rows .cell",
    "input:checked",
    ".footer",
];
const TEXTS: &[&str] = &["", "x", "row", "buy milk", "déjà vu", "  pad  "];
const CLASSES: &[&str] = &["selected", "completed", "active"];
const ATTRS: &[(&str, &str)] = &[("href", "#/all"), ("rel", "x"), ("data-k", "v")];

fn gen_element() -> impl Strategy<Value = ElementState> {
    (
        prop::sample::select(TEXTS),
        prop::sample::select(TEXTS),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(prop::sample::select(CLASSES), 0..3),
        prop::collection::vec(prop::sample::select(ATTRS), 0..2),
    )
        .prop_map(|(text, value, checked, enabled, visible, classes, attrs)| {
            let mut e = ElementState {
                text: text.to_owned(),
                value: value.to_owned(),
                checked,
                enabled,
                visible,
                ..ElementState::default()
            };
            e.classes = classes.into_iter().map(str::to_owned).collect();
            e.classes.sort();
            e.classes.dedup();
            for (k, v) in attrs {
                e.attributes.insert(Symbol::intern(k), v.to_owned());
            }
            e
        })
}

fn gen_snapshot() -> impl Strategy<Value = StateSnapshot> {
    (
        prop::collection::vec(
            (
                prop::sample::select(SELECTORS),
                prop::collection::vec(gen_element(), 0..5),
            ),
            0..SELECTORS.len(),
        ),
        prop::collection::vec(
            prop::sample::select(&["loaded?", "click!", "timeout?"][..]),
            0..2,
        ),
        0u64..1000,
    )
        .prop_map(|(queries, happened, timestamp_ms)| {
            let mut s = StateSnapshot::new();
            for (sel, elems) in queries {
                s.insert_query(Selector::new(sel), elems);
            }
            s.happened = happened.into_iter().map(Symbol::intern).collect();
            s.timestamp_ms = timestamp_ms;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fundamental law: applying the diff reproduces the target
    /// snapshot exactly, for arbitrary (unrelated) snapshot pairs.
    #[test]
    fn diff_apply_round_trips((base, next) in (gen_snapshot(), gen_snapshot())) {
        let delta = SnapshotDelta::diff(&base, &next, 2);
        let rebuilt = delta.apply(&base).expect("well-formed delta applies");
        prop_assert_eq!(rebuilt, next);
    }

    /// Diffing a snapshot against itself produces an empty change set,
    /// and the delta still round-trips (carrying metadata only).
    #[test]
    fn self_diff_is_empty(snap in gen_snapshot()) {
        let delta = SnapshotDelta::diff(&snap, &snap, 1);
        prop_assert!(delta.changes.is_empty());
        prop_assert_eq!(delta.apply(&snap).expect("applies"), snap);
    }

    /// `changed_selectors` is symmetric, agrees with `queries_differ`,
    /// and matches the key set of the diff in both directions.
    #[test]
    fn change_detection_is_consistent((a, b) in (gen_snapshot(), gen_snapshot())) {
        let ab = a.changed_selectors(&b);
        let ba = b.changed_selectors(&a);
        prop_assert_eq!(&ab, &ba, "changed_selectors must be symmetric");
        prop_assert_eq!(a.queries_differ(&b), !ab.is_empty());
        prop_assert_eq!(b.queries_differ(&a), !ab.is_empty());
        prop_assert_eq!(SnapshotDelta::diff(&a, &b, 1).changed_selectors(), ab);
        prop_assert_eq!(SnapshotDelta::diff(&b, &a, 1).changed_selectors(), ba);
    }

    /// Applying a diff shares the allocations of unchanged selectors with
    /// the base — the structural-sharing guarantee trace storage relies
    /// on — and never exceeds the change set in what it replaces.
    #[test]
    fn apply_shares_unchanged_allocations((base, next) in (gen_snapshot(), gen_snapshot())) {
        let delta = SnapshotDelta::diff(&base, &next, 2);
        let rebuilt = delta.apply(&base).expect("applies");
        for (sel, results) in &rebuilt.queries {
            if !delta.changes.contains_key(sel) {
                let original = base.queries.get(sel).expect("unchanged implies present");
                prop_assert!(std::sync::Arc::ptr_eq(original, results));
            }
        }
    }

    /// Wire sizes are consistent: a delta between equal-keyed snapshots
    /// never beats the theoretical floor (metadata), and the estimate is
    /// stable under recomputation.
    #[test]
    fn wire_sizes_are_deterministic(snap in gen_snapshot()) {
        prop_assert_eq!(snap.wire_size(), snap.clone().wire_size());
        let delta = SnapshotDelta::diff(&snap, &snap, 3);
        prop_assert!(delta.wire_size() >= 4 + 8 + 4 + 4 + 8 - snap.happened.len());
    }
}
