//! Deterministic state fingerprints: the coverage abstraction of the
//! exploration engine.
//!
//! A [`StateFingerprint`] is a 64-bit hash of a snapshot's observable
//! *shape*: which selectors match how many elements, with which classes,
//! attribute keys, boolean projections, and coarse text sizes. Two states
//! with the same fingerprint are considered "the same place" for coverage
//! purposes — the exploration engine (the `quickstrom-explore` crate)
//! counts distinct fingerprints and fingerprint transitions to decide
//! where test budget should go next.
//!
//! Three properties matter, and the encoding is chosen for them:
//!
//! 1. **Determinism across processes.** The hash reads only *content* —
//!    selector text, class strings, attribute key text (sorted by text,
//!    not by process-local [`Symbol`](crate::Symbol) index) — never
//!    interner indices or pointer identities. A fingerprint recorded in a
//!    benchmark JSON is reproducible on another machine.
//! 2. **Selector-order insensitivity.** Per-selector terms
//!    ([`query_term`]) are combined with a commutative operation
//!    (wrapping addition of mixed terms), so the fingerprint does not
//!    depend on the iteration order of the query map.
//! 3. **Incrementality.** Because the combination is a sum of independent
//!    per-selector terms, a receiver that knows which selectors changed
//!    (a [`SnapshotDelta`](crate::SnapshotDelta) says exactly that) can
//!    update a fingerprint in O(changed) by subtracting the old terms and
//!    adding the new ones — the `Fingerprinter` in `quickstrom-explore`
//!    does precisely this.
//!
//! The *shape abstraction* deliberately discards exact text and form
//! values, keeping only a coarse length bucket ([`text_bucket`]): a todo
//! list containing "buy milk" and one containing "walk the dog" are the
//! same place, while adding a third item, completing one, or revealing an
//! edit field are all different places. Without this abstraction every
//! generated input string would mint a fresh "state" and coverage counts
//! would measure string diversity instead of application-state diversity.

use crate::snapshot::{ElementState, Selector, StateSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A deterministic 64-bit hash of a snapshot's observable shape.
///
/// See the [module docs](self) for what is and is not distinguished.
/// Displayed as 16 hex digits.
///
/// # Examples
///
/// ```
/// use quickstrom_protocol::{fingerprint_state, ElementState, StateSnapshot};
///
/// let mut a = StateSnapshot::new();
/// a.insert_query("#list", vec![ElementState::with_text("buy milk")]);
/// let mut b = StateSnapshot::new();
/// b.insert_query("#list", vec![ElementState::with_text("walk dog")]);
/// // Same shape (one short-text element): same fingerprint.
/// assert_eq!(fingerprint_state(&a), fingerprint_state(&b));
///
/// let mut c = StateSnapshot::new();
/// c.insert_query("#list", vec![
///     ElementState::with_text("buy milk"),
///     ElementState::with_text("walk dog"),
/// ]);
/// // Different element count: different place.
/// assert_ne!(fingerprint_state(&a), fingerprint_state(&c));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct StateFingerprint(u64);

impl StateFingerprint {
    /// The fingerprint of a snapshot with no queries at all (the additive
    /// identity of [`StateFingerprint::add_term`]).
    pub const EMPTY: StateFingerprint = StateFingerprint(0);

    /// Builds a fingerprint from a raw 64-bit value (for summing
    /// [`query_term`]s incrementally).
    #[must_use]
    pub fn from_raw(raw: u64) -> StateFingerprint {
        StateFingerprint(raw)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The fingerprint with one per-selector term added (commutative).
    #[must_use]
    pub fn add_term(self, term: u64) -> StateFingerprint {
        StateFingerprint(self.0.wrapping_add(term))
    }

    /// The fingerprint with one per-selector term removed (the inverse of
    /// [`StateFingerprint::add_term`]).
    #[must_use]
    pub fn remove_term(self, term: u64) -> StateFingerprint {
        StateFingerprint(self.0.wrapping_sub(term))
    }
}

impl fmt::Display for StateFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An FNV-1a 64 accumulator — small, allocation-free, and identical on
/// every platform (the fingerprint contract forbids `DefaultHasher`,
/// whose keys are randomized per process).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// A length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// SplitMix64 finalizer: decorrelates the per-selector FNV hashes before
/// they are summed, so that structured differences in one selector cannot
/// systematically cancel differences in another.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-sensitive accumulator for projection hashes: the public face
/// of the FNV-1a-64 + SplitMix64 pipeline the fingerprint terms use
/// internally, for callers that hash *sequences* of terms and texts
/// (an atom's footprint-restricted view of a state, a captured
/// environment) rather than commutative per-selector sums.
///
/// Unlike the [`StateFingerprint`] term algebra, the accumulator is
/// order-sensitive — `term(a); term(b)` and `term(b); term(a)` finish
/// differently — which is what keying a memo by a *projection sequence*
/// needs. Determinism across processes holds as long as callers feed only
/// content (texts, counts, other deterministic hashes), never interner
/// indices; feeding process-local pointers is allowed for keys scoped to
/// one process (the caller owns that trade-off).
///
/// # Examples
///
/// ```
/// use quickstrom_protocol::ProjectionHash;
///
/// let mut a = ProjectionHash::new();
/// a.term(1);
/// a.text("x");
/// let mut b = ProjectionHash::new();
/// b.term(1);
/// b.text("x");
/// assert_eq!(a.finish(), b.finish());
///
/// let mut c = ProjectionHash::new();
/// c.text("x");
/// c.term(1);
/// assert_ne!(b.finish(), c.finish(), "order matters");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProjectionHash(Fnv);

impl ProjectionHash {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> ProjectionHash {
        ProjectionHash(Fnv::new())
    }

    /// Feeds one 64-bit term (a count, a sub-hash, a pointer-scoped id).
    pub fn term(&mut self, term: u64) {
        self.0.u64(term);
    }

    /// Feeds one length-prefixed string.
    pub fn text(&mut self, s: &str) {
        self.0.str(s);
    }

    /// Feeds one boolean flag.
    pub fn flag(&mut self, b: bool) {
        self.0.byte(u8::from(b));
    }

    /// The finalized hash (SplitMix64-mixed, like every fingerprint term).
    #[must_use]
    pub fn finish(self) -> u64 {
        mix(self.0.finish())
    }
}

impl Default for ProjectionHash {
    fn default() -> Self {
        ProjectionHash::new()
    }
}

/// The coarse text-size abstraction: 0 for empty, then three length
/// buckets. Exact text is deliberately *not* part of a fingerprint — see
/// the [module docs](self).
#[must_use]
pub fn text_bucket(s: &str) -> u8 {
    match s.chars().count() {
        0 => 0,
        1..=8 => 1,
        9..=40 => 2,
        _ => 3,
    }
}

/// The shape hash of one element projection: its boolean projections,
/// class list, attribute *keys* (sorted by text), and the
/// [`text_bucket`]s of its text and value.
#[must_use]
pub fn element_shape_hash(e: &ElementState) -> u64 {
    let mut h = Fnv::new();
    let bools = u8::from(e.checked)
        | (u8::from(e.enabled) << 1)
        | (u8::from(e.visible) << 2)
        | (u8::from(e.focused) << 3);
    h.byte(bools);
    h.byte(text_bucket(&e.text));
    h.byte(text_bucket(&e.value));
    // `classes` is sorted by construction (webdom sorts at render time),
    // so hashing in order is content-deterministic.
    h.u64(e.classes.len() as u64);
    for class in &e.classes {
        h.str(class);
    }
    // Attribute keys are interned symbols whose map order follows the
    // process-local interning order — re-sort by *text* so the hash is
    // identical across processes. Values contribute only their presence
    // bucket (an href that flips between empty and set is a shape change;
    // its exact target is not).
    let mut attrs: Vec<(&str, &str)> = e
        .attributes
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    attrs.sort_unstable_by_key(|(k, _)| *k);
    h.u64(attrs.len() as u64);
    for (key, value) in attrs {
        h.str(key);
        h.byte(text_bucket(value));
    }
    h.finish()
}

/// The fingerprint term contributed by one selector's query results: a
/// mixed hash of the selector text, the element count, and every
/// element's [`element_shape_hash`] in document order. Terms are combined
/// with wrapping addition ([`StateFingerprint::add_term`]), which is what
/// makes fingerprints selector-order-insensitive and incrementally
/// updatable.
#[must_use]
pub fn query_term(selector: &Selector, elements: &[ElementState]) -> u64 {
    let mut h = Fnv::new();
    h.str(selector.as_str());
    h.u64(elements.len() as u64);
    for e in elements {
        h.u64(element_shape_hash(e));
    }
    // Never contribute the additive identity: a term of 0 would make "the
    // selector is present" indistinguishable from "the selector is
    // absent" under summation.
    mix(h.finish()) | 1
}

/// The fingerprint of a whole snapshot: the sum of every selector's
/// [`query_term`]. `happened` and the timestamp are *not* part of the
/// fingerprint — coverage is about where the application is, not how the
/// trace got there.
#[must_use]
pub fn fingerprint_state(state: &StateSnapshot) -> StateFingerprint {
    let mut fp = StateFingerprint::EMPTY;
    for (sel, elems) in &state.queries {
        fp = fp.add_term(query_term(sel, elems));
    }
    fp
}

/// Which element projections of one selector a specification actually
/// reads — the per-selector entry of a *spec-aware* fingerprint mask.
///
/// The shape abstraction above is spec-agnostic: it buckets text sizes
/// and folds every projection in, whether or not any property looks at
/// it. A `FieldMask` inverts a static analysis of the compiled
/// specification (the `specstrom::analysis` atom footprints) into the
/// opposite trade: projections the spec reads are hashed *exactly* (the
/// spec distinguishes `#step` showing `"2"` from `"3"` by `parseInt`, so
/// the fingerprint should too), and projections it never reads are
/// dropped entirely (generated input strings the spec only tests for
/// emptiness stop minting fresh "states").
///
/// An all-`false` mask still contributes the element *count* — matching
/// more or fewer elements is observable through `.count`/`.present` and
/// through action-target enumeration even when no projection is read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldMask {
    /// `.text` is read.
    pub text: bool,
    /// `.value` is read.
    pub value: bool,
    /// `.checked` is read.
    pub checked: bool,
    /// `.enabled` is read.
    pub enabled: bool,
    /// `.visible` is read.
    pub visible: bool,
    /// `.focused` is read.
    pub focused: bool,
    /// `.classes` is read.
    pub classes: bool,
    /// `.attributes` is read.
    pub attributes: bool,
}

impl FieldMask {
    /// Every projection is (or may be) read — the conservative mask for
    /// selectors that flow somewhere the analysis cannot follow.
    pub const ALL: FieldMask = FieldMask {
        text: true,
        value: true,
        checked: true,
        enabled: true,
        visible: true,
        focused: true,
        classes: true,
        attributes: true,
    };

    /// `true` when every projection read under `other` is also read under
    /// `self` — i.e. a projection hash computed with `self` distinguishes
    /// at least every state pair a hash computed with `other` would.
    #[must_use]
    pub fn covers(self, other: FieldMask) -> bool {
        (!other.text || self.text)
            && (!other.value || self.value)
            && (!other.checked || self.checked)
            && (!other.enabled || self.enabled)
            && (!other.visible || self.visible)
            && (!other.focused || self.focused)
            && (!other.classes || self.classes)
            && (!other.attributes || self.attributes)
    }

    /// `true` when at least one projection is read.
    #[must_use]
    pub fn any(self) -> bool {
        self.text
            || self.value
            || self.checked
            || self.enabled
            || self.visible
            || self.focused
            || self.classes
            || self.attributes
    }
}

/// The projection hash of one element under a [`FieldMask`]: only masked
/// projections contribute, and text-like projections contribute their
/// *exact* content (length-prefixed), not a [`text_bucket`] — see
/// [`FieldMask`] for why the trade-off inverts here.
#[must_use]
pub fn element_projection_hash(e: &ElementState, mask: FieldMask) -> u64 {
    let mut h = Fnv::new();
    let bools = u8::from(mask.checked && e.checked)
        | (u8::from(mask.enabled && e.enabled) << 1)
        | (u8::from(mask.visible && e.visible) << 2)
        | (u8::from(mask.focused && e.focused) << 3);
    h.byte(bools);
    if mask.text {
        h.str(&e.text);
    }
    if mask.value {
        h.str(&e.value);
    }
    if mask.classes {
        h.u64(e.classes.len() as u64);
        for class in &e.classes {
            h.str(class);
        }
    }
    if mask.attributes {
        // Sorted by key text for cross-process determinism, exactly like
        // [`element_shape_hash`] — but with exact values: the evaluator
        // hands attribute values to `==` verbatim.
        let mut attrs: Vec<(&str, &str)> = e
            .attributes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        attrs.sort_unstable_by_key(|(k, _)| *k);
        h.u64(attrs.len() as u64);
        for (key, value) in attrs {
            h.str(key);
            h.str(value);
        }
    }
    h.finish()
}

/// The spec-aware counterpart of [`query_term`]: the fingerprint term of
/// one selector's results under a [`FieldMask`]. Always covers the
/// element count; element projections contribute only when masked in.
/// Combine with [`StateFingerprint::add_term`] exactly like shape terms.
#[must_use]
pub fn masked_query_term(selector: &Selector, elements: &[ElementState], mask: FieldMask) -> u64 {
    let mut h = Fnv::new();
    h.str(selector.as_str());
    h.u64(elements.len() as u64);
    if mask.any() {
        for e in elements {
            h.u64(element_projection_hash(e, mask));
        }
    }
    mix(h.finish()) | 1
}

/// The spec-aware fingerprint of a whole snapshot: the sum of
/// [`masked_query_term`]s over the selectors present in `masks`.
/// Selectors the specification never reads (absent from the mask map)
/// contribute nothing — their changes are unobservable to the spec, so
/// they should not mint fresh coverage states.
#[must_use]
pub fn fingerprint_state_masked(
    state: &StateSnapshot,
    masks: &std::collections::BTreeMap<Selector, FieldMask>,
) -> StateFingerprint {
    let mut fp = StateFingerprint::EMPTY;
    for (sel, elems) in &state.queries {
        if let Some(mask) = masks.get(sel) {
            fp = fp.add_term(masked_query_term(sel, elems, *mask));
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Symbol;

    fn snap(pairs: &[(&str, &[&str])]) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        for (sel, texts) in pairs {
            s.insert_query(
                Selector::new(*sel),
                texts.iter().map(|t| ElementState::with_text(*t)).collect(),
            );
        }
        s
    }

    #[test]
    fn text_buckets_are_coarse() {
        assert_eq!(text_bucket(""), 0);
        assert_eq!(text_bucket("a"), 1);
        assert_eq!(text_bucket("buy milk"), 1);
        assert_eq!(text_bucket("a slightly longer entry"), 2);
        assert_eq!(text_bucket(&"x".repeat(100)), 3);
        // Char count, not byte count: multibyte text lands in the bucket
        // of its character length.
        assert_eq!(text_bucket("déjà vu"), 1);
    }

    #[test]
    fn same_shape_different_text_same_fingerprint() {
        let a = snap(&[("#list", &["buy milk"]), ("#count", &["1"])]);
        let b = snap(&[("#list", &["walk dog"]), ("#count", &["2"])]);
        assert_eq!(fingerprint_state(&a), fingerprint_state(&b));
    }

    #[test]
    fn structural_changes_change_the_fingerprint() {
        let base = snap(&[("#list", &["a", "b"])]);
        let more = snap(&[("#list", &["a", "b", "c"])]);
        let empty_text = snap(&[("#list", &["a", ""])]);
        assert_ne!(fingerprint_state(&base), fingerprint_state(&more));
        assert_ne!(fingerprint_state(&base), fingerprint_state(&empty_text));

        let mut classed = base.clone();
        let mut elems: Vec<ElementState> = classed.matches(&"#list".into()).to_vec();
        elems[0].classes.push("completed".into());
        classed.insert_query("#list", elems);
        assert_ne!(fingerprint_state(&base), fingerprint_state(&classed));

        let mut checked = base.clone();
        let mut elems: Vec<ElementState> = checked.matches(&"#list".into()).to_vec();
        elems[1].checked = true;
        checked.insert_query("#list", elems);
        assert_ne!(fingerprint_state(&base), fingerprint_state(&checked));
    }

    #[test]
    fn happened_and_timestamp_do_not_matter() {
        let mut a = snap(&[("#a", &["x"])]);
        let mut b = snap(&[("#a", &["x"])]);
        a.happened.push("click!".into());
        b.timestamp_ms = 999;
        assert_eq!(fingerprint_state(&a), fingerprint_state(&b));
    }

    #[test]
    fn fingerprint_is_a_sum_of_terms() {
        let s = snap(&[("#a", &["x"]), ("#b", &[]), (".rows", &["1", "2"])]);
        let mut sum = StateFingerprint::EMPTY;
        // Add terms in reverse selector order: same result.
        for (sel, elems) in s.queries.iter().rev() {
            sum = sum.add_term(query_term(sel, elems));
        }
        assert_eq!(sum, fingerprint_state(&s));
        // Removing a term inverts adding it.
        let sel = Selector::new("#b");
        let without = sum.remove_term(query_term(&sel, &s.queries[&sel]));
        let mut smaller = s.clone();
        smaller.queries.remove(&sel);
        assert_eq!(without, fingerprint_state(&smaller));
    }

    #[test]
    fn empty_result_list_still_contributes() {
        // `#missing` matched by zero elements is a different place than
        // `#missing` not instrumented at all.
        let with = snap(&[("#a", &["x"]), ("#missing", &[])]);
        let without = snap(&[("#a", &["x"])]);
        assert_ne!(fingerprint_state(&with), fingerprint_state(&without));
    }

    #[test]
    fn attribute_keys_hash_by_text_not_intern_order() {
        // Two elements whose attribute maps hold the same keys must hash
        // identically no matter which key was interned first.
        let mut e1 = ElementState::with_text("x");
        e1.attributes.insert(Symbol::intern("zz-later"), "1".into());
        e1.attributes.insert(Symbol::intern("aa-early"), "2".into());
        let mut e2 = ElementState::with_text("x");
        e2.attributes.insert(Symbol::intern("aa-early"), "2".into());
        e2.attributes.insert(Symbol::intern("zz-later"), "1".into());
        assert_eq!(element_shape_hash(&e1), element_shape_hash(&e2));
    }

    #[test]
    fn attribute_value_presence_matters_but_not_content() {
        let mut set = ElementState::with_text("x");
        set.attributes
            .insert(Symbol::intern("href"), "#/all".into());
        let mut other = ElementState::with_text("x");
        other
            .attributes
            .insert(Symbol::intern("href"), "#/done".into());
        let mut emptied = ElementState::with_text("x");
        emptied.attributes.insert(Symbol::intern("href"), "".into());
        assert_eq!(element_shape_hash(&set), element_shape_hash(&other));
        assert_ne!(element_shape_hash(&set), element_shape_hash(&emptied));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(StateFingerprint::EMPTY.to_string(), "0".repeat(16));
        assert_eq!(
            StateFingerprint::from_raw(0xDEAD_BEEF).to_string(),
            "00000000deadbeef"
        );
    }

    #[test]
    fn pinned_values_are_stable() {
        // The fingerprint function is part of the reproducibility
        // contract (coverage JSONs cite distinct-state counts that assume
        // stable hashing) — changing the encoding must fail loudly.
        let s = snap(&[("#a", &["x"]), (".rows", &["one", "two"])]);
        assert_eq!(fingerprint_state(&s), fingerprint_state(&s.clone()));
        let empty = StateSnapshot::new();
        assert_eq!(fingerprint_state(&empty), StateFingerprint::EMPTY);
    }
}
