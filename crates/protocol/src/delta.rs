//! Incremental state updates: the delta half of the snapshot protocol.
//!
//! A Quickstrom session observes a long trace of states that differ only
//! locally — one checkbox toggles, one label re-renders — while the
//! dependency set can cover hundreds of elements (think a data grid).
//! Shipping a full [`StateSnapshot`] per protocol message therefore costs
//! O(all selectors × all elements) per step. A [`SnapshotDelta`] instead
//! carries, per selector, only the element positions whose projections
//! changed, plus the new `happened`/timestamp metadata, and a monotone
//! `state_version` so a receiver can detect missed updates.
//!
//! The algebra is exact, not lossy:
//!
//! ```text
//! SnapshotDelta::diff(base, next, v).apply(base) == next
//! ```
//!
//! and [`SnapshotDelta::apply`] shares the [`QueryResults`](crate::QueryResults) allocations of
//! every unchanged selector with the base snapshot, which is what lets the
//! checker keep a whole trace at O(changed) memory per step.
//!
//! [`StateUpdate`] is the wire type: executors send one full snapshot at
//! session start and deltas from then on (an executor may also keep
//! sending full snapshots — the checker accepts both forms of every
//! message, which the differential tests exploit to pin the two modes
//! bit-identical).

use crate::intern::Symbol;
use crate::snapshot::{ElementState, Selector, StateSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The version of the delta encoding itself (bumped on incompatible
/// changes to [`SnapshotDelta`]'s layout, so two processes can detect a
/// mismatch before mis-applying updates).
pub const DELTA_FORMAT_VERSION: u32 = 1;

/// The change to one selector's query results between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryDelta {
    /// The selector is absent from the next snapshot (it left the
    /// instrumented set — dependency sets are fixed per session, so this
    /// only occurs in hand-built snapshots and generated tests).
    Removed,
    /// Element-level edits relative to the base result list.
    Edits {
        /// The length of the next result list. Positions `>= len` in the
        /// base are dropped; positions `>=` the base length are additions
        /// and always appear in `changed`.
        len: usize,
        /// `(index, new projection)` for every changed or added position,
        /// in index order.
        changed: Vec<(usize, ElementState)>,
    },
}

impl QueryDelta {
    /// An estimate of the encoded size in bytes (same model as
    /// [`StateSnapshot::wire_size`]).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            QueryDelta::Removed => 1,
            QueryDelta::Edits { changed, .. } => {
                1 + 4
                    + 4
                    + changed
                        .iter()
                        .map(|(_, e)| 4 + e.wire_size())
                        .sum::<usize>()
            }
        }
    }
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta's format version is not understood by this process.
    UnknownFormat(u32),
    /// A delta arrived before any full snapshot established a base state.
    MissingBase,
    /// An edit index points at or beyond the stated result length.
    IndexOutOfRange {
        /// The selector whose edit list is malformed.
        selector: Selector,
        /// The offending index.
        index: usize,
        /// The stated result length.
        len: usize,
    },
    /// A position past the base list's length (an *addition*) has no
    /// entry in the edit list — the sender dropped an edit; applying
    /// would have to invent element state.
    MissingAddition {
        /// The selector whose edit list is incomplete.
        selector: Selector,
        /// The uncovered added position.
        index: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownFormat(v) => write!(
                f,
                "snapshot delta format {v} is not supported (this process \
                 speaks format {DELTA_FORMAT_VERSION})"
            ),
            DeltaError::MissingBase => f.write_str(
                "received a snapshot delta before any full snapshot \
                 established a base state",
            ),
            DeltaError::IndexOutOfRange {
                selector,
                index,
                len,
            } => write!(
                f,
                "snapshot delta for {selector} edits index {index} of a \
                 {len}-element result list"
            ),
            DeltaError::MissingAddition { selector, index } => write!(
                f,
                "snapshot delta for {selector} grows the result list past \
                 its base but carries no element for added position {index}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// An incremental state update: everything that changed between two
/// consecutive snapshots of one session.
///
/// # Examples
///
/// ```
/// use quickstrom_protocol::{ElementState, SnapshotDelta, StateSnapshot};
///
/// let mut base = StateSnapshot::new();
/// base.insert_query("#a", vec![ElementState::with_text("one")]);
/// let mut next = base.clone();
/// next.insert_query("#a", vec![ElementState::with_text("two")]);
/// next.timestamp_ms = 7;
///
/// let delta = SnapshotDelta::diff(&base, &next, 2);
/// assert_eq!(delta.changed_selectors(), vec!["#a".into()]);
/// assert_eq!(delta.apply(&base).unwrap(), next);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// The delta encoding version ([`DELTA_FORMAT_VERSION`]).
    pub format: u32,
    /// The (monotone, per-session) version of the state this delta
    /// produces. The executor numbers states from 1 at the initial full
    /// snapshot; a receiver whose trace length disagrees with
    /// `state_version - 1` has missed an update.
    pub state_version: u64,
    /// Per-selector changes; selectors absent from this map are unchanged
    /// and keep the base snapshot's (shared) results.
    pub changes: BTreeMap<Selector, QueryDelta>,
    /// The `happened` names of the produced state, interned (see
    /// [`StateSnapshot::happened`]).
    pub happened: Vec<Symbol>,
    /// The virtual timestamp of the produced state.
    pub timestamp_ms: u64,
}

/// Element-level diff of one selector's result lists, or `None` when they
/// are identical — the single producer of the [`QueryDelta::Edits`]
/// format ([`SnapshotDelta::diff`] and incremental executors both call
/// this, so the proptested round-trip law covers every delta producer).
#[must_use]
pub fn diff_results(base: &[ElementState], next: &[ElementState]) -> Option<QueryDelta> {
    let mut changed = Vec::new();
    for (i, elem) in next.iter().enumerate() {
        if base.get(i) != Some(elem) {
            changed.push((i, elem.clone()));
        }
    }
    if changed.is_empty() && base.len() == next.len() {
        None
    } else {
        Some(QueryDelta::Edits {
            len: next.len(),
            changed,
        })
    }
}

impl SnapshotDelta {
    /// Computes the delta taking `base` to `next`, tagged with the
    /// version of the produced state.
    ///
    /// Selectors sharing a [`QueryResults`](crate::QueryResults) allocation between the two
    /// snapshots are skipped in O(1).
    #[must_use]
    pub fn diff(base: &StateSnapshot, next: &StateSnapshot, state_version: u64) -> SnapshotDelta {
        let mut changes = BTreeMap::new();
        for (sel, next_results) in &next.queries {
            match base.queries.get(sel) {
                Some(base_results) => {
                    if Arc::ptr_eq(base_results, next_results) {
                        continue;
                    }
                    if let Some(edit) = diff_results(base_results, next_results) {
                        changes.insert(*sel, edit);
                    }
                }
                None => {
                    changes.insert(
                        *sel,
                        QueryDelta::Edits {
                            len: next_results.len(),
                            changed: next_results.iter().cloned().enumerate().collect(),
                        },
                    );
                }
            }
        }
        for sel in base.queries.keys() {
            if !next.queries.contains_key(sel) {
                changes.insert(*sel, QueryDelta::Removed);
            }
        }
        SnapshotDelta {
            format: DELTA_FORMAT_VERSION,
            state_version,
            changes,
            happened: next.happened.clone(),
            timestamp_ms: next.timestamp_ms,
        }
    }

    /// Applies this delta to a base snapshot, producing the next state.
    ///
    /// Unchanged selectors share their [`QueryResults`](crate::QueryResults) allocation with
    /// `base`; only changed selectors materialise a new element list.
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownFormat`] for a version this process does not
    /// speak, [`DeltaError::IndexOutOfRange`] for malformed edit lists.
    pub fn apply(&self, base: &StateSnapshot) -> Result<StateSnapshot, DeltaError> {
        if self.format != DELTA_FORMAT_VERSION {
            return Err(DeltaError::UnknownFormat(self.format));
        }
        let mut queries = base.queries.clone(); // O(selectors) Arc bumps
        for (sel, change) in &self.changes {
            match change {
                QueryDelta::Removed => {
                    queries.remove(sel);
                }
                QueryDelta::Edits { len, changed } => {
                    // Prefill with the base's elements; positions past the
                    // base length are *additions* and must be covered by
                    // an edit — fabricating default element state for a
                    // dropped edit would hand the evaluator invented data.
                    let mut list: Vec<Option<ElementState>> = match base.queries.get(sel) {
                        Some(results) => results.iter().take(*len).cloned().map(Some).collect(),
                        None => Vec::new(),
                    };
                    list.resize_with(*len, || None);
                    for (index, elem) in changed {
                        let slot = list.get_mut(*index).ok_or(DeltaError::IndexOutOfRange {
                            selector: *sel,
                            index: *index,
                            len: *len,
                        })?;
                        *slot = Some(elem.clone());
                    }
                    let filled: Result<Vec<ElementState>, DeltaError> = list
                        .into_iter()
                        .enumerate()
                        .map(|(index, slot)| {
                            slot.ok_or(DeltaError::MissingAddition {
                                selector: *sel,
                                index,
                            })
                        })
                        .collect();
                    queries.insert(*sel, Arc::new(filled?));
                }
            }
        }
        Ok(StateSnapshot {
            queries,
            happened: self.happened.clone(),
            timestamp_ms: self.timestamp_ms,
        })
    }

    /// The selectors this delta touches, in selector order.
    #[must_use]
    pub fn changed_selectors(&self) -> Vec<Selector> {
        self.changes.keys().copied().collect()
    }

    /// An estimate of the encoded size in bytes (same model as
    /// [`StateSnapshot::wire_size`]).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let strings = |s: &str| 4 + s.len();
        4 + 8
            + 4
            + self
                .changes
                .iter()
                .map(|(sel, c)| strings(sel.as_str()) + c.wire_size())
                .sum::<usize>()
            + 4
            + self
                .happened
                .iter()
                .map(|h| strings(h.as_str()))
                .sum::<usize>()
            + 8
    }
}

/// The state payload of an executor message: a full snapshot or an
/// incremental delta against the receiver's last reconstructed state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateUpdate {
    /// A complete snapshot (always the first message of a session; an
    /// executor may also send full snapshots exclusively).
    Full(StateSnapshot),
    /// An incremental update against the previous state.
    Delta(SnapshotDelta),
}

impl StateUpdate {
    /// The full snapshot, when this update carries one.
    #[must_use]
    pub fn full(&self) -> Option<&StateSnapshot> {
        match self {
            StateUpdate::Full(s) => Some(s),
            StateUpdate::Delta(_) => None,
        }
    }

    /// `true` for delta updates.
    #[must_use]
    pub fn is_delta(&self) -> bool {
        matches!(self, StateUpdate::Delta(_))
    }

    /// The virtual timestamp of the carried state.
    #[must_use]
    pub fn timestamp_ms(&self) -> u64 {
        match self {
            StateUpdate::Full(s) => s.timestamp_ms,
            StateUpdate::Delta(d) => d.timestamp_ms,
        }
    }

    /// Reconstructs the carried state: a clone (cheap — shared query
    /// results) for full snapshots, [`SnapshotDelta::apply`] against
    /// `base` for deltas.
    ///
    /// # Errors
    ///
    /// [`DeltaError::MissingBase`] when a delta arrives with no base
    /// state, plus everything [`SnapshotDelta::apply`] reports.
    pub fn resolve(&self, base: Option<&StateSnapshot>) -> Result<StateSnapshot, DeltaError> {
        match self {
            StateUpdate::Full(s) => Ok(s.clone()),
            StateUpdate::Delta(d) => d.apply(base.ok_or(DeltaError::MissingBase)?),
        }
    }

    /// An estimate of the encoded size in bytes (same model as
    /// [`StateSnapshot::wire_size`]), including the one-byte variant tag.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        1 + match self {
            StateUpdate::Full(s) => s.wire_size(),
            StateUpdate::Delta(d) => d.wire_size(),
        }
    }
}

impl From<StateSnapshot> for StateUpdate {
    fn from(s: StateSnapshot) -> Self {
        StateUpdate::Full(s)
    }
}

impl From<SnapshotDelta> for StateUpdate {
    fn from(d: SnapshotDelta) -> Self {
        StateUpdate::Delta(d)
    }
}

/// Transport statistics for one executor session: what crossed the
/// checker⟷executor boundary, in the byte model of
/// [`StateSnapshot::wire_size`].
///
/// `full_bytes` is the counterfactual: what the same session would have
/// shipped had every state been a full snapshot. The quotient
/// ([`TransportStats::delta_ratio`]) is the headline number of the
/// incremental pipeline — `1.0` means deltas saved nothing, `0.05` means
/// the wire carried 5% of the full-snapshot cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// State-carrying messages sent.
    pub states: u64,
    /// Of those, full snapshots.
    pub full_states: u64,
    /// Of those, deltas.
    pub delta_states: u64,
    /// Estimated bytes actually shipped.
    pub shipped_bytes: u64,
    /// Estimated bytes had every state been shipped in full.
    pub full_bytes: u64,
    /// Total changed selectors across all state messages.
    pub changed_selectors: u64,
}

impl TransportStats {
    /// Records one sent update: its shipped size, the size of the
    /// equivalent full snapshot, and how many selectors it touched.
    pub fn record(&mut self, update: &StateUpdate, full_equivalent: usize, changed: usize) {
        self.states += 1;
        match update {
            StateUpdate::Full(_) => self.full_states += 1,
            StateUpdate::Delta(_) => self.delta_states += 1,
        }
        self.shipped_bytes += update.wire_size() as u64;
        self.full_bytes += full_equivalent as u64;
        self.changed_selectors += changed as u64;
    }

    /// Shipped bytes as a fraction of the full-snapshot counterfactual
    /// (`1.0` when nothing was sent).
    #[must_use]
    pub fn delta_ratio(&self) -> f64 {
        if self.full_bytes == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.shipped_bytes as f64 / self.full_bytes as f64
            }
        }
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: TransportStats) {
        self.states += other.states;
        self.full_states += other.full_states;
        self.delta_states += other.delta_states;
        self.shipped_bytes += other.shipped_bytes;
        self.full_bytes += other.full_bytes;
        self.changed_selectors += other.changed_selectors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, &[&str])]) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        for (sel, texts) in pairs {
            s.insert_query(
                Selector::new(*sel),
                texts.iter().map(|t| ElementState::with_text(*t)).collect(),
            );
        }
        s
    }

    #[test]
    fn diff_apply_round_trips() {
        let base = snap(&[("#a", &["x"]), (".items", &["1", "2"]), ("#gone", &["g"])]);
        let mut next = snap(&[("#a", &["x"]), (".items", &["1", "2", "3"]), ("#new", &[])]);
        next.happened.push("changed?".into());
        next.timestamp_ms = 42;
        let delta = SnapshotDelta::diff(&base, &next, 2);
        assert_eq!(delta.apply(&base).unwrap(), next);
        assert_eq!(
            delta.changed_selectors(),
            vec![
                Selector::new("#gone"),
                Selector::new("#new"),
                Selector::new(".items")
            ]
        );
    }

    #[test]
    fn unchanged_selectors_share_allocations_through_apply() {
        let base = snap(&[("#a", &["x"]), (".items", &["1", "2"])]);
        let mut next = base.clone();
        next.insert_query("#a", vec![ElementState::with_text("y")]);
        let delta = SnapshotDelta::diff(&base, &next, 2);
        let rebuilt = delta.apply(&base).unwrap();
        let items = Selector::new(".items");
        assert!(Arc::ptr_eq(&base.queries[&items], &rebuilt.queries[&items]));
        assert_eq!(rebuilt, next);
    }

    #[test]
    fn identical_snapshots_diff_to_empty_changes() {
        let base = snap(&[("#a", &["x"])]);
        let mut next = base.clone();
        next.timestamp_ms = 9;
        next.happened.push("timeout?".into());
        let delta = SnapshotDelta::diff(&base, &next, 2);
        assert!(delta.changes.is_empty());
        let rebuilt = delta.apply(&base).unwrap();
        assert_eq!(rebuilt, next);
        assert_eq!(rebuilt.timestamp_ms, 9);
    }

    #[test]
    fn per_element_edits_ship_only_changed_positions() {
        let texts: Vec<String> = (0..100).map(|i| format!("row {i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let base = snap(&[(".rows", &refs)]);
        let mut elems: Vec<ElementState> = base.queries[&Selector::new(".rows")]
            .iter()
            .cloned()
            .collect();
        elems[17].text = "edited".into();
        let mut next = base.clone();
        next.insert_query(".rows", elems);
        let delta = SnapshotDelta::diff(&base, &next, 2);
        match &delta.changes[&Selector::new(".rows")] {
            QueryDelta::Edits { len, changed } => {
                assert_eq!(*len, 100);
                assert_eq!(changed.len(), 1);
                assert_eq!(changed[0].0, 17);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(delta.wire_size() < next.wire_size() / 10);
        assert_eq!(delta.apply(&base).unwrap(), next);
    }

    #[test]
    fn resolve_requires_a_base_for_deltas() {
        let base = snap(&[("#a", &["x"])]);
        let next = snap(&[("#a", &["y"])]);
        let update: StateUpdate = SnapshotDelta::diff(&base, &next, 2).into();
        assert_eq!(update.resolve(None), Err(DeltaError::MissingBase));
        assert_eq!(update.resolve(Some(&base)).unwrap(), next);
        let full: StateUpdate = next.clone().into();
        assert_eq!(full.resolve(None).unwrap(), next);
    }

    #[test]
    fn apply_rejects_unknown_formats_and_bad_indices() {
        let base = snap(&[("#a", &["x"])]);
        let next = snap(&[("#a", &["y"])]);
        let mut delta = SnapshotDelta::diff(&base, &next, 2);
        let good = delta.clone();
        delta.format = 99;
        assert_eq!(delta.apply(&base), Err(DeltaError::UnknownFormat(99)));
        let mut bad = good;
        bad.changes.insert(
            Selector::new("#a"),
            QueryDelta::Edits {
                len: 1,
                changed: vec![(5, ElementState::default())],
            },
        );
        assert!(matches!(
            bad.apply(&base),
            Err(DeltaError::IndexOutOfRange {
                index: 5,
                len: 1,
                ..
            })
        ));
    }

    #[test]
    fn apply_rejects_uncovered_additions() {
        // A delta that grows the list must carry every added element; a
        // sender that drops one may not have default state invented for
        // it.
        let base = snap(&[("#a", &["x"])]);
        let mut next = snap(&[("#a", &["x", "y", "z"])]);
        next.timestamp_ms = 3;
        let good = SnapshotDelta::diff(&base, &next, 2);
        assert_eq!(good.apply(&base).unwrap(), next);
        let mut bad = good;
        if let Some(QueryDelta::Edits { changed, .. }) = bad.changes.get_mut(&Selector::new("#a")) {
            changed.retain(|(i, _)| *i != 2); // drop the edit for slot 2
        }
        assert_eq!(
            bad.apply(&base),
            Err(DeltaError::MissingAddition {
                selector: Selector::new("#a"),
                index: 2,
            })
        );
    }

    #[test]
    fn transport_stats_accumulate() {
        // A realistically-sized state: the delta overhead amortises only
        // when unchanged selectors dominate (one row of many changes).
        let rows: Vec<String> = (0..50).map(|i| format!("row {i}")).collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let base = snap(&[(".rows", &refs), ("#status", &["idle"])]);
        let mut next = base.clone();
        next.insert_query("#status", vec![ElementState::with_text("busy")]);
        let mut stats = TransportStats::default();
        let full: StateUpdate = base.clone().into();
        stats.record(&full, base.wire_size(), 1);
        let delta: StateUpdate = SnapshotDelta::diff(&base, &next, 2).into();
        stats.record(&delta, next.wire_size(), 1);
        assert_eq!(stats.states, 2);
        assert_eq!(stats.full_states, 1);
        assert_eq!(stats.delta_states, 1);
        assert_eq!(stats.changed_selectors, 2);
        assert!(stats.delta_ratio() < 1.0);
        let mut total = TransportStats::default();
        total.absorb(stats);
        assert_eq!(total, stats);
        assert_eq!(TransportStats::default().delta_ratio(), 1.0);
    }

    #[test]
    fn delta_error_display() {
        assert!(DeltaError::UnknownFormat(3)
            .to_string()
            .contains("format 3"));
        assert!(DeltaError::MissingBase
            .to_string()
            .contains("full snapshot"));
        let e = DeltaError::IndexOutOfRange {
            selector: Selector::new("#x"),
            index: 4,
            len: 2,
        };
        assert!(e.to_string().contains("index 4"));
    }
}
