//! A global string interner and the [`Symbol`] newtype.
//!
//! The hot loop of the checker evaluates the progressed formula once per
//! observed state, and every evaluation touches identifiers: record field
//! names, element projections, selector texts, attribute keys. Interning
//! maps each distinct string to a `u32` once, so the per-step work compares
//! and hashes machine words instead of re-walking string bytes.
//!
//! The interner is process-global and append-only: an interned string is
//! never freed (it is leaked into `'static`), so [`Symbol::as_str`] can
//! hand out `&'static str` without lifetime gymnastics and symbols stay
//! valid across threads for the whole process. This is the "one interner
//! across all runs and shrink replays" the checker relies on — two
//! [`Symbol`]s are equal if and only if their strings are, no matter which
//! thread or run interned them first. The leak is bounded by the set of
//! distinct identifiers ever interned (specification text, DOM attribute
//! keys), not by the number of evaluations.
//!
//! A fixed set of names that appear on the per-step path — the element
//! projection fields of [`crate::ElementState`] — is pre-seeded in a known
//! order, so [`sym`] can expose them as `const` symbols and evaluators can
//! match on them without any lookup at all. The pre-seeded order is the
//! alphabetical field order, which keeps record iteration order identical
//! to the pre-interning `BTreeMap<String, _>` representation.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `u32` index into the process-global symbol table.
///
/// Equality, ordering and hashing all operate on the index — O(1) — and
/// agree with string equality (the interner is injective). Note that the
/// *ordering* of two symbols follows interning order, not lexicographic
/// order; use [`Symbol::as_str`] when alphabetical order matters.
///
/// A `Symbol` is **process-local**: the index is only meaningful against
/// this process's table. Anything that crosses a process boundary must
/// carry the string ([`Symbol::as_str`]) and re-intern on the other side —
/// see the crate docs on serialization.
///
/// # Examples
///
/// ```
/// use quickstrom_protocol::Symbol;
/// let a = Symbol::intern("text");
/// let b = Symbol::intern("text");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "text");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        let mut interner = Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        };
        for s in sym::PRESEEDED {
            interner.intern(s);
        }
        interner
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("fewer than 2^32 distinct symbols");
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns a string, returning its symbol (inserting it on first use).
    #[must_use]
    pub fn intern(s: &str) -> Symbol {
        let table = interner();
        if let Some(&id) = table.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        Symbol(table.write().expect("interner poisoned").intern(s))
    }

    /// Looks a string up *without* interning it.
    ///
    /// Use this when the string comes from runtime data (user text, record
    /// indexing by a computed key): a miss means no record field of that
    /// name can exist anywhere, and the table is not polluted with
    /// arbitrary runtime strings.
    #[must_use]
    pub fn lookup(s: &str) -> Option<Symbol> {
        interner()
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The interned string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw table index (stable for the lifetime of the process).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

/// Pre-seeded symbols for the element projection fields, available as
/// constants so evaluators can match on them without a table lookup.
pub mod sym {
    use super::Symbol;

    /// The strings seeded into the interner at indices `0..`, in order.
    ///
    /// The first eight are the [`crate::ElementState`] record fields in
    /// alphabetical order (so symbol-keyed element records iterate in the
    /// same order string-keyed ones did); the rest are the synthetic
    /// selector projections.
    pub(super) const PRESEEDED: &[&str] = &[
        "attributes",
        "checked",
        "classes",
        "enabled",
        "focused",
        "text",
        "value",
        "visible",
        "count",
        "present",
        "all",
    ];

    /// `.attributes` — the element's attribute record.
    pub const ATTRIBUTES: Symbol = Symbol(0);
    /// `.checked` — checkbox/radio checkedness.
    pub const CHECKED: Symbol = Symbol(1);
    /// `.classes` — the CSS class list.
    pub const CLASSES: Symbol = Symbol(2);
    /// `.enabled` — not `disabled`.
    pub const ENABLED: Symbol = Symbol(3);
    /// `.focused` — has keyboard focus.
    pub const FOCUSED: Symbol = Symbol(4);
    /// `.text` — concatenated visible text.
    pub const TEXT: Symbol = Symbol(5);
    /// `.value` — the form value.
    pub const VALUE: Symbol = Symbol(6);
    /// `.visible` — rendered visible.
    pub const VISIBLE: Symbol = Symbol(7);
    /// `.count` — number of matched elements (selector projection).
    pub const COUNT: Symbol = Symbol(8);
    /// `.present` — at least one match (selector projection).
    pub const PRESENT: Symbol = Symbol(9);
    /// `.all` — every match as a record list (selector projection).
    pub const ALL: Symbol = Symbol(10);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_injective() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn preseeded_constants_match_their_strings() {
        assert_eq!(Symbol::intern("text"), sym::TEXT);
        assert_eq!(Symbol::intern("attributes"), sym::ATTRIBUTES);
        assert_eq!(Symbol::intern("checked"), sym::CHECKED);
        assert_eq!(Symbol::intern("classes"), sym::CLASSES);
        assert_eq!(Symbol::intern("enabled"), sym::ENABLED);
        assert_eq!(Symbol::intern("focused"), sym::FOCUSED);
        assert_eq!(Symbol::intern("value"), sym::VALUE);
        assert_eq!(Symbol::intern("visible"), sym::VISIBLE);
        assert_eq!(Symbol::intern("count"), sym::COUNT);
        assert_eq!(Symbol::intern("present"), sym::PRESENT);
        assert_eq!(Symbol::intern("all"), sym::ALL);
        assert_eq!(sym::TEXT.as_str(), "text");
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(
            Symbol::lookup("definitely-never-interned-q8x7"),
            None,
            "lookup must not insert"
        );
        let s = Symbol::intern("now-interned-q8x7");
        assert_eq!(Symbol::lookup("now-interned-q8x7"), Some(s));
    }

    #[test]
    fn symbols_are_shareable_across_threads() {
        let s = Symbol::intern("threaded");
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || Symbol::intern("threaded") == s))
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn display_resolves() {
        assert_eq!(Symbol::intern("shown").to_string(), "shown");
        assert_eq!(format!("{}", sym::TEXT), "text");
    }
}
