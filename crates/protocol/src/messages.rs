//! The checker/executor messages of Figure 9, and the action vocabulary.

use crate::delta::StateUpdate;
use crate::snapshot::{Selector, StateSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A key for keyboard actions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Key {
    /// The Enter/Return key (commits edits, adds to-do items, …).
    Enter,
    /// The Escape key (aborts edits).
    Escape,
    /// A printable character.
    Char(char),
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Enter => f.write_str("Enter"),
            Key::Escape => f.write_str("Escape"),
            Key::Char(c) => write!(f, "{c}"),
        }
    }
}

/// The primitive interactions an executor knows how to perform.
///
/// These correspond to Specstrom's built-in action constructors
/// (`click!(…)`, `noop!`, …). Selector-targeted kinds are instantiated per
/// matched element by the checker (the `index` in [`ActionInstance`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// Click the target element.
    Click,
    /// Double-click the target element (enters edit mode in TodoMVC).
    DblClick,
    /// Focus the target element.
    Focus,
    /// Type text into the target element, replacing its current value.
    ///
    /// `None` means the checker should generate text (the property-based
    /// part of property-based testing); it is always `Some` by the time the
    /// message reaches an executor.
    Input(Option<String>),
    /// Press a key with the target element focused.
    KeyPress(Key),
    /// Do nothing (used with timeouts to let the application act, §3.2).
    Noop,
    /// Reload the page, preserving persistent storage.
    ///
    /// An extension beyond the paper (§4.1 leaves persistence testing as
    /// future work and suggests exactly this action).
    Reload,
}

impl ActionKind {
    /// Does this kind need a target element?
    #[must_use]
    pub fn needs_target(&self) -> bool {
        !matches!(self, ActionKind::Noop | ActionKind::Reload)
    }
}

/// A fully-instantiated action the checker asks an executor to perform.
///
/// `name` is the Specstrom-level action name (e.g. `"start!"`), used to
/// fill the `happened` variable of the resulting state. `target` pairs the
/// selector with the index of the matched element to hit — the checker
/// picks the index from the current snapshot, which is also how one
/// `action` definition fans out into one candidate per matching element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionInstance {
    /// The Specstrom action name (`…!` suffix by convention).
    pub name: String,
    /// What to do.
    pub kind: ActionKind,
    /// Which element to do it to, if the kind needs a target.
    pub target: Option<(Selector, usize)>,
    /// Timeout in milliseconds to wait for an event after acting (§3.2).
    pub timeout_ms: Option<u64>,
}

impl ActionInstance {
    /// A no-target action (noop or reload).
    pub fn untargeted(name: impl Into<String>, kind: ActionKind) -> Self {
        ActionInstance {
            name: name.into(),
            kind,
            target: None,
            timeout_ms: None,
        }
    }

    /// A targeted action at match `index` of `selector`.
    pub fn targeted(
        name: impl Into<String>,
        kind: ActionKind,
        selector: impl Into<Selector>,
        index: usize,
    ) -> Self {
        ActionInstance {
            name: name.into(),
            kind,
            target: Some((selector.into(), index)),
            timeout_ms: None,
        }
    }

    /// Returns the same action with a timeout attached.
    #[must_use]
    pub fn with_timeout(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }
}

impl fmt::Display for ActionInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some((sel, idx)) = &self.target {
            write!(f, " @ {sel}[{idx}]")?;
        }
        if let ActionKind::Input(Some(text)) = &self.kind {
            write!(f, " {text:?}")?;
        }
        if let ActionKind::KeyPress(k) = &self.kind {
            write!(f, " <{k}>")?;
        }
        Ok(())
    }
}

/// Messages from the checker to the executor (Figure 9, left column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckerMsg {
    /// Request a new session be started; `dependencies` are the selectors
    /// relevant to the property under test (from static analysis, §3.3).
    Start {
        /// Selectors to instrument and include in every snapshot.
        dependencies: Vec<Selector>,
    },
    /// Request the given action be performed. Ignored by the executor if
    /// `version` is less than the current trace length (Figure 10).
    Act {
        /// The action to perform.
        action: ActionInstance,
        /// The trace length as known to the checker.
        version: u64,
    },
    /// Request a [`ExecutorMsg::Timeout`] after `time_ms` if no event
    /// occurs first. Also version-checked.
    Wait {
        /// How long to wait, in (virtual) milliseconds.
        time_ms: u64,
        /// The trace length as known to the checker.
        version: u64,
    },
    /// End the session.
    End,
}

/// Messages from the executor to the checker (Figure 9, right column).
///
/// Each variant carries a [`StateUpdate`]: the first message of a session
/// is always a full [`StateSnapshot`]; from then on an incremental
/// executor sends [`SnapshotDelta`](crate::SnapshotDelta)s against the
/// previously reported state. Receivers reconstruct the state with
/// [`StateUpdate::resolve`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorMsg {
    /// An event occurred (asynchronously, or the initial `loaded?`), along
    /// with the updated state.
    Event {
        /// The event kind: `"loaded?"` or `"changed?"`.
        event: String,
        /// For `changed?`, the selectors whose projections changed (one
        /// asynchronous update may touch several instrumented selectors).
        detail: Vec<Selector>,
        /// The updated state (full or incremental).
        state: StateUpdate,
    },
    /// An action was performed, along with the updated state.
    Acted {
        /// The updated state (full or incremental).
        state: StateUpdate,
    },
    /// A requested timeout elapsed without an event, along with the
    /// (possibly updated) state.
    Timeout {
        /// The current state (full or incremental).
        state: StateUpdate,
    },
}

impl ExecutorMsg {
    /// An [`Event`](ExecutorMsg::Event) message (`state` may be a full
    /// snapshot or a delta).
    pub fn event(
        event: impl Into<String>,
        detail: Vec<Selector>,
        state: impl Into<StateUpdate>,
    ) -> Self {
        ExecutorMsg::Event {
            event: event.into(),
            detail,
            state: state.into(),
        }
    }

    /// An [`Acted`](ExecutorMsg::Acted) message.
    pub fn acted(state: impl Into<StateUpdate>) -> Self {
        ExecutorMsg::Acted {
            state: state.into(),
        }
    }

    /// A [`Timeout`](ExecutorMsg::Timeout) message.
    pub fn timeout(state: impl Into<StateUpdate>) -> Self {
        ExecutorMsg::Timeout {
            state: state.into(),
        }
    }

    /// The state update carried by this message.
    #[must_use]
    pub fn update(&self) -> &StateUpdate {
        match self {
            ExecutorMsg::Event { state, .. }
            | ExecutorMsg::Acted { state }
            | ExecutorMsg::Timeout { state } => state,
        }
    }

    /// The full snapshot carried by this message, when the update is not
    /// incremental (use [`StateUpdate::resolve`] to reconstruct states
    /// from a delta-mode executor).
    #[must_use]
    pub fn full_state(&self) -> Option<&StateSnapshot> {
        self.update().full()
    }

    /// `true` for `Acted` replies.
    #[must_use]
    pub fn is_acted(&self) -> bool {
        matches!(self, ExecutorMsg::Acted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_kind_targets() {
        assert!(ActionKind::Click.needs_target());
        assert!(ActionKind::Input(None).needs_target());
        assert!(!ActionKind::Noop.needs_target());
        assert!(!ActionKind::Reload.needs_target());
    }

    #[test]
    fn action_instance_builders() {
        let a = ActionInstance::untargeted("wait!", ActionKind::Noop).with_timeout(1000);
        assert_eq!(a.timeout_ms, Some(1000));
        assert_eq!(a.target, None);
        let b = ActionInstance::targeted("start!", ActionKind::Click, "#toggle", 0);
        assert_eq!(b.target, Some((Selector::new("#toggle"), 0)));
    }

    #[test]
    fn action_display() {
        let a = ActionInstance::targeted("check!", ActionKind::Click, ".toggle", 2);
        assert_eq!(a.to_string(), "check! @ `.toggle`[2]");
        let b = ActionInstance::targeted(
            "type!",
            ActionKind::Input(Some("milk".into())),
            ".new-todo",
            0,
        );
        assert_eq!(b.to_string(), "type! @ `.new-todo`[0] \"milk\"");
        let c =
            ActionInstance::targeted("commit!", ActionKind::KeyPress(Key::Enter), ".new-todo", 0);
        assert_eq!(c.to_string(), "commit! @ `.new-todo`[0] <Enter>");
    }

    #[test]
    fn executor_msg_state_access() {
        let s = StateSnapshot::new();
        let m = ExecutorMsg::acted(s.clone());
        assert_eq!(m.full_state(), Some(&s));
        assert_eq!(m.update().resolve(None).unwrap(), s);
        assert!(m.is_acted());
        let e = ExecutorMsg::event("loaded?", Vec::new(), s.clone());
        assert!(!e.is_acted());
        let t = ExecutorMsg::timeout(s);
        assert!(!t.is_acted());
        assert!(!t.update().is_delta());
    }

    #[test]
    fn key_display() {
        assert_eq!(Key::Enter.to_string(), "Enter");
        assert_eq!(Key::Escape.to_string(), "Escape");
        assert_eq!(Key::Char('x').to_string(), "x");
    }
}
