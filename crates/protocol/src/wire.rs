//! A hand-rolled binary wire codec for the checker/executor protocol.
//!
//! The pipelined session runtime treats the executor as a stage behind a
//! message seam ([`crate::Executor::send`]); this module makes that seam a
//! *process* boundary. Every [`CheckerMsg`] and [`ExecutorMsg`] — state
//! snapshots, deltas and all — round-trips through a self-describing
//! binary encoding, framed with a little-endian `u32` length prefix, so a
//! remote executor can serve sessions over any byte stream (see
//! `examples/remote_executor.rs` for the TCP loop).
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! integers, length-prefixed UTF-8 strings, one tag byte per enum
//! variant, containers as a `u32` count followed by the items in order.
//! [`Symbol`]s and [`Selector`]s travel as their strings and are
//! re-interned on decode — symbol indices are process-local (see
//! [`crate::intern`]) and must never cross the wire.
//!
//! The request/reply discipline mirrors [`crate::Executor::send`]: the
//! checker side writes one framed [`CheckerMsg`] and reads one framed
//! *batch* of [`ExecutorMsg`] replies (a `u32` count, then each message),
//! keeping the remote seam bufferable and strictly ordered — exactly the
//! properties the in-process pipeline relies on.

use crate::delta::{QueryDelta, SnapshotDelta, StateUpdate};
use crate::intern::Symbol;
use crate::messages::{ActionInstance, ActionKind, CheckerMsg, ExecutorMsg, Key};
use crate::snapshot::{ElementState, QueryResults, Selector, StateSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// The largest frame a conforming peer may send: 64 MiB. Big-table
/// snapshots are ~3 MB; anything near this bound is a protocol error or a
/// hostile peer, and refusing it keeps `read_frame` from allocating
/// unbounded memory on a corrupt length prefix.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Why encoding, decoding, or framing failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying byte stream failed (or reached EOF mid-frame).
    Io(std::io::Error),
    /// The bytes do not describe a valid message: an unknown enum tag,
    /// a truncated payload, invalid UTF-8, or trailing garbage.
    Malformed(String),
    /// A frame length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Malformed(what) => write!(f, "malformed wire data: {what}"),
            WireError::Oversized(len) => write!(
                f,
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encodes one checker message to a standalone byte payload (no frame
/// prefix; pair with [`write_frame`]).
#[must_use]
pub fn encode_checker_msg(msg: &CheckerMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_checker_msg(&mut out, msg);
    out
}

/// Decodes one checker message from a payload produced by
/// [`encode_checker_msg`], rejecting trailing bytes.
pub fn decode_checker_msg(bytes: &[u8]) -> Result<CheckerMsg, WireError> {
    let mut r = Reader::new(bytes);
    let msg = take_checker_msg(&mut r)?;
    r.finish()?;
    Ok(msg)
}

/// Encodes one executor reply batch (the `Vec<ExecutorMsg>` that
/// [`crate::Executor::send`] returns) to a standalone byte payload.
#[must_use]
pub fn encode_executor_batch(batch: &[ExecutorMsg]) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u32(&mut out, batch.len() as u32);
    for msg in batch {
        put_executor_msg(&mut out, msg);
    }
    out
}

/// Decodes one executor reply batch from a payload produced by
/// [`encode_executor_batch`], rejecting trailing bytes.
pub fn decode_executor_batch(bytes: &[u8]) -> Result<Vec<ExecutorMsg>, WireError> {
    let mut r = Reader::new(bytes);
    let count = take_u32(&mut r)?;
    let mut batch = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        batch.push(take_executor_msg(&mut r)?);
    }
    r.finish()?;
    Ok(batch)
}

/// Writes one length-prefixed frame: a little-endian `u32` payload length,
/// then the payload. Flushes, so a frame is visible to the peer as soon as
/// this returns.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(WireError::Oversized(payload.len() as u32))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame written by [`write_frame`]. Returns
/// `Ok(None)` on a clean EOF *between* frames (the peer closed the
/// session); EOF inside a frame is an [`WireError::Io`] error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    // A clean close lands here with zero bytes; a torn frame does not.
    match r.read(&mut prefix)? {
        0 => return Ok(None),
        n => r.read_exact(&mut prefix[n..])?,
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ── primitive writers ────────────────────────────────────────────────────

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: Option<&T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => put_u8(out, 0),
        Some(inner) => {
            put_u8(out, 1);
            put(out, inner);
        }
    }
}

// ── primitive readers ────────────────────────────────────────────────────

/// A bounds-checked cursor over one decoded payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing byte(s) after the message",
                self.bytes.len() - self.at
            )))
        }
    }
}

fn take_u8(r: &mut Reader) -> Result<u8, WireError> {
    Ok(r.take(1)?[0])
}

fn take_u32(r: &mut Reader) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")))
}

fn take_u64(r: &mut Reader) -> Result<u64, WireError> {
    Ok(u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")))
}

fn take_bool(r: &mut Reader) -> Result<bool, WireError> {
    match take_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::Malformed(format!("bool tag {t}"))),
    }
}

fn take_string(r: &mut Reader) -> Result<String, WireError> {
    let len = take_u32(r)? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
}

fn take_opt<T>(
    r: &mut Reader,
    take: impl FnOnce(&mut Reader) -> Result<T, WireError>,
) -> Result<Option<T>, WireError> {
    match take_u8(r)? {
        0 => Ok(None),
        1 => Ok(Some(take(r)?)),
        t => Err(WireError::Malformed(format!("option tag {t}"))),
    }
}

// ── protocol vocabulary ──────────────────────────────────────────────────
//
// Symbols and selectors travel as strings: interner indices are
// process-local, and `Symbol::intern` makes re-interning on decode the
// identity-preserving move (equal strings ⇒ equal symbols).

fn put_symbol(out: &mut Vec<u8>, sym: &Symbol) {
    put_str(out, sym.as_str());
}

fn take_symbol(r: &mut Reader) -> Result<Symbol, WireError> {
    Ok(Symbol::intern(&take_string(r)?))
}

fn put_selector(out: &mut Vec<u8>, sel: &Selector) {
    put_str(out, sel.as_str());
}

fn take_selector(r: &mut Reader) -> Result<Selector, WireError> {
    Ok(Selector::new(take_string(r)?))
}

fn put_element(out: &mut Vec<u8>, e: &ElementState) {
    put_str(out, &e.text);
    put_str(out, &e.value);
    put_bool(out, e.checked);
    put_bool(out, e.enabled);
    put_bool(out, e.visible);
    put_bool(out, e.focused);
    put_u32(out, e.classes.len() as u32);
    for class in &e.classes {
        put_str(out, class);
    }
    put_u32(out, e.attributes.len() as u32);
    for (name, value) in &e.attributes {
        put_symbol(out, name);
        put_str(out, value);
    }
}

fn take_element(r: &mut Reader) -> Result<ElementState, WireError> {
    let text = take_string(r)?;
    let value = take_string(r)?;
    let checked = take_bool(r)?;
    let enabled = take_bool(r)?;
    let visible = take_bool(r)?;
    let focused = take_bool(r)?;
    let classes = (0..take_u32(r)?)
        .map(|_| take_string(r))
        .collect::<Result<Vec<_>, _>>()?;
    let mut attributes = BTreeMap::new();
    for _ in 0..take_u32(r)? {
        let name = take_symbol(r)?;
        attributes.insert(name, take_string(r)?);
    }
    Ok(ElementState {
        text,
        value,
        checked,
        enabled,
        visible,
        focused,
        classes,
        attributes,
    })
}

fn put_query_results(out: &mut Vec<u8>, results: &QueryResults) {
    put_u32(out, results.len() as u32);
    for element in results.iter() {
        put_element(out, element);
    }
}

fn take_query_results(r: &mut Reader) -> Result<QueryResults, WireError> {
    let elements = (0..take_u32(r)?)
        .map(|_| take_element(r))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Arc::new(elements))
}

fn put_snapshot(out: &mut Vec<u8>, s: &StateSnapshot) {
    put_u32(out, s.queries.len() as u32);
    for (selector, results) in &s.queries {
        put_selector(out, selector);
        put_query_results(out, results);
    }
    put_u32(out, s.happened.len() as u32);
    for event in &s.happened {
        put_symbol(out, event);
    }
    put_u64(out, s.timestamp_ms);
}

fn take_snapshot(r: &mut Reader) -> Result<StateSnapshot, WireError> {
    let mut queries = BTreeMap::new();
    for _ in 0..take_u32(r)? {
        let selector = take_selector(r)?;
        queries.insert(selector, take_query_results(r)?);
    }
    let happened = (0..take_u32(r)?)
        .map(|_| take_symbol(r))
        .collect::<Result<Vec<_>, _>>()?;
    let timestamp_ms = take_u64(r)?;
    Ok(StateSnapshot {
        queries,
        happened,
        timestamp_ms,
    })
}

fn put_query_delta(out: &mut Vec<u8>, d: &QueryDelta) {
    match d {
        QueryDelta::Removed => put_u8(out, 0),
        QueryDelta::Edits { len, changed } => {
            put_u8(out, 1);
            put_u32(out, *len as u32);
            put_u32(out, changed.len() as u32);
            for (index, element) in changed {
                put_u32(out, *index as u32);
                put_element(out, element);
            }
        }
    }
}

fn take_query_delta(r: &mut Reader) -> Result<QueryDelta, WireError> {
    match take_u8(r)? {
        0 => Ok(QueryDelta::Removed),
        1 => {
            let len = take_u32(r)? as usize;
            let mut changed = Vec::new();
            for _ in 0..take_u32(r)? {
                let index = take_u32(r)? as usize;
                changed.push((index, take_element(r)?));
            }
            Ok(QueryDelta::Edits { len, changed })
        }
        t => Err(WireError::Malformed(format!("query-delta tag {t}"))),
    }
}

fn put_delta(out: &mut Vec<u8>, d: &SnapshotDelta) {
    put_u32(out, d.format);
    put_u64(out, d.state_version);
    put_u32(out, d.changes.len() as u32);
    for (selector, change) in &d.changes {
        put_selector(out, selector);
        put_query_delta(out, change);
    }
    put_u32(out, d.happened.len() as u32);
    for event in &d.happened {
        put_symbol(out, event);
    }
    put_u64(out, d.timestamp_ms);
}

fn take_delta(r: &mut Reader) -> Result<SnapshotDelta, WireError> {
    let format = take_u32(r)?;
    let state_version = take_u64(r)?;
    let mut changes = BTreeMap::new();
    for _ in 0..take_u32(r)? {
        let selector = take_selector(r)?;
        changes.insert(selector, take_query_delta(r)?);
    }
    let happened = (0..take_u32(r)?)
        .map(|_| take_symbol(r))
        .collect::<Result<Vec<_>, _>>()?;
    let timestamp_ms = take_u64(r)?;
    Ok(SnapshotDelta {
        format,
        state_version,
        changes,
        happened,
        timestamp_ms,
    })
}

fn put_update(out: &mut Vec<u8>, u: &StateUpdate) {
    match u {
        StateUpdate::Full(snapshot) => {
            put_u8(out, 0);
            put_snapshot(out, snapshot);
        }
        StateUpdate::Delta(delta) => {
            put_u8(out, 1);
            put_delta(out, delta);
        }
    }
}

fn take_update(r: &mut Reader) -> Result<StateUpdate, WireError> {
    match take_u8(r)? {
        0 => Ok(StateUpdate::Full(take_snapshot(r)?)),
        1 => Ok(StateUpdate::Delta(take_delta(r)?)),
        t => Err(WireError::Malformed(format!("state-update tag {t}"))),
    }
}

fn put_key(out: &mut Vec<u8>, k: &Key) {
    match k {
        Key::Enter => put_u8(out, 0),
        Key::Escape => put_u8(out, 1),
        Key::Char(c) => {
            put_u8(out, 2);
            put_u32(out, *c as u32);
        }
    }
}

fn take_key(r: &mut Reader) -> Result<Key, WireError> {
    match take_u8(r)? {
        0 => Ok(Key::Enter),
        1 => Ok(Key::Escape),
        2 => {
            let code = take_u32(r)?;
            char::from_u32(code)
                .map(Key::Char)
                .ok_or_else(|| WireError::Malformed(format!("scalar value {code}")))
        }
        t => Err(WireError::Malformed(format!("key tag {t}"))),
    }
}

fn put_action_kind(out: &mut Vec<u8>, k: &ActionKind) {
    match k {
        ActionKind::Click => put_u8(out, 0),
        ActionKind::DblClick => put_u8(out, 1),
        ActionKind::Focus => put_u8(out, 2),
        ActionKind::Input(text) => {
            put_u8(out, 3);
            put_opt(out, text.as_ref(), |out, s| put_str(out, s));
        }
        ActionKind::KeyPress(key) => {
            put_u8(out, 4);
            put_key(out, key);
        }
        ActionKind::Noop => put_u8(out, 5),
        ActionKind::Reload => put_u8(out, 6),
    }
}

fn take_action_kind(r: &mut Reader) -> Result<ActionKind, WireError> {
    match take_u8(r)? {
        0 => Ok(ActionKind::Click),
        1 => Ok(ActionKind::DblClick),
        2 => Ok(ActionKind::Focus),
        3 => Ok(ActionKind::Input(take_opt(r, take_string)?)),
        4 => Ok(ActionKind::KeyPress(take_key(r)?)),
        5 => Ok(ActionKind::Noop),
        6 => Ok(ActionKind::Reload),
        t => Err(WireError::Malformed(format!("action-kind tag {t}"))),
    }
}

fn put_action(out: &mut Vec<u8>, a: &ActionInstance) {
    put_str(out, &a.name);
    put_action_kind(out, &a.kind);
    put_opt(out, a.target.as_ref(), |out, (selector, index)| {
        put_selector(out, selector);
        put_u32(out, *index as u32);
    });
    put_opt(out, a.timeout_ms.as_ref(), |out, ms| put_u64(out, *ms));
}

fn take_action(r: &mut Reader) -> Result<ActionInstance, WireError> {
    let name = take_string(r)?;
    let kind = take_action_kind(r)?;
    let target = take_opt(r, |r| {
        let selector = take_selector(r)?;
        Ok((selector, take_u32(r)? as usize))
    })?;
    let timeout_ms = take_opt(r, take_u64)?;
    Ok(ActionInstance {
        name,
        kind,
        target,
        timeout_ms,
    })
}

fn put_checker_msg(out: &mut Vec<u8>, msg: &CheckerMsg) {
    match msg {
        CheckerMsg::Start { dependencies } => {
            put_u8(out, 0);
            put_u32(out, dependencies.len() as u32);
            for selector in dependencies {
                put_selector(out, selector);
            }
        }
        CheckerMsg::Act { action, version } => {
            put_u8(out, 1);
            put_action(out, action);
            put_u64(out, *version);
        }
        CheckerMsg::Wait { time_ms, version } => {
            put_u8(out, 2);
            put_u64(out, *time_ms);
            put_u64(out, *version);
        }
        CheckerMsg::End => put_u8(out, 3),
    }
}

fn take_checker_msg(r: &mut Reader) -> Result<CheckerMsg, WireError> {
    match take_u8(r)? {
        0 => {
            let dependencies = (0..take_u32(r)?)
                .map(|_| take_selector(r))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(CheckerMsg::Start { dependencies })
        }
        1 => {
            let action = take_action(r)?;
            let version = take_u64(r)?;
            Ok(CheckerMsg::Act { action, version })
        }
        2 => {
            let time_ms = take_u64(r)?;
            let version = take_u64(r)?;
            Ok(CheckerMsg::Wait { time_ms, version })
        }
        3 => Ok(CheckerMsg::End),
        t => Err(WireError::Malformed(format!("checker-msg tag {t}"))),
    }
}

fn put_executor_msg(out: &mut Vec<u8>, msg: &ExecutorMsg) {
    match msg {
        ExecutorMsg::Event {
            event,
            detail,
            state,
        } => {
            put_u8(out, 0);
            put_str(out, event);
            put_u32(out, detail.len() as u32);
            for selector in detail {
                put_selector(out, selector);
            }
            put_update(out, state);
        }
        ExecutorMsg::Acted { state } => {
            put_u8(out, 1);
            put_update(out, state);
        }
        ExecutorMsg::Timeout { state } => {
            put_u8(out, 2);
            put_update(out, state);
        }
    }
}

fn take_executor_msg(r: &mut Reader) -> Result<ExecutorMsg, WireError> {
    match take_u8(r)? {
        0 => {
            let event = take_string(r)?;
            let detail = (0..take_u32(r)?)
                .map(|_| take_selector(r))
                .collect::<Result<Vec<_>, _>>()?;
            let state = take_update(r)?;
            Ok(ExecutorMsg::Event {
                event,
                detail,
                state,
            })
        }
        1 => Ok(ExecutorMsg::Acted {
            state: take_update(r)?,
        }),
        2 => Ok(ExecutorMsg::Timeout {
            state: take_update(r)?,
        }),
        t => Err(WireError::Malformed(format!("executor-msg tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DELTA_FORMAT_VERSION;

    fn element(text: &str) -> ElementState {
        let mut e = ElementState {
            text: text.into(),
            value: "v".into(),
            checked: true,
            enabled: false,
            visible: true,
            focused: false,
            classes: vec!["completed".into(), "editing".into()],
            attributes: BTreeMap::new(),
        };
        e.attributes.insert(Symbol::intern("href"), "#/".into());
        e
    }

    fn snapshot() -> StateSnapshot {
        let mut queries = BTreeMap::new();
        queries.insert(
            Selector::new(".todo-list li"),
            Arc::new(vec![element("buy milk"), element("write tests")]),
        );
        queries.insert(Selector::new(".new-todo"), Arc::new(Vec::new()));
        StateSnapshot {
            queries,
            happened: vec![Symbol::intern("loaded?")],
            timestamp_ms: 12345,
        }
    }

    fn delta() -> SnapshotDelta {
        let mut changes = BTreeMap::new();
        changes.insert(
            Selector::new(".todo-list li"),
            QueryDelta::Edits {
                len: 3,
                changed: vec![(2, element("new item"))],
            },
        );
        changes.insert(Selector::new(".gone"), QueryDelta::Removed);
        SnapshotDelta {
            format: DELTA_FORMAT_VERSION,
            state_version: 7,
            changes,
            happened: vec![Symbol::intern("changed?")],
            timestamp_ms: 999,
        }
    }

    #[test]
    fn checker_msgs_round_trip() {
        let msgs = [
            CheckerMsg::Start {
                dependencies: vec![Selector::new(".todo-list li"), Selector::new(".toggle")],
            },
            CheckerMsg::Act {
                action: ActionInstance::targeted(
                    "type!",
                    ActionKind::Input(Some("milk".into())),
                    ".new-todo",
                    0,
                )
                .with_timeout(250),
                version: 42,
            },
            CheckerMsg::Act {
                action: ActionInstance::untargeted("noop!", ActionKind::Noop),
                version: 0,
            },
            CheckerMsg::Act {
                action: ActionInstance::targeted(
                    "commit!",
                    ActionKind::KeyPress(Key::Char('λ')),
                    ".new-todo",
                    3,
                ),
                version: 9,
            },
            CheckerMsg::Wait {
                time_ms: 1000,
                version: 3,
            },
            CheckerMsg::End,
        ];
        for msg in msgs {
            let bytes = encode_checker_msg(&msg);
            assert_eq!(decode_checker_msg(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn executor_batches_round_trip() {
        let batch = vec![
            ExecutorMsg::event(
                "loaded?",
                vec![Selector::new(".todo-list li")],
                StateUpdate::Full(snapshot()),
            ),
            ExecutorMsg::acted(StateUpdate::Delta(delta())),
            ExecutorMsg::timeout(StateUpdate::Full(snapshot())),
        ];
        let bytes = encode_executor_batch(&batch);
        assert_eq!(decode_executor_batch(&bytes).unwrap(), batch);
        // The empty batch (a stale Act's reply) is a valid frame too.
        assert_eq!(
            decode_executor_batch(&encode_executor_batch(&[])).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut stream = Vec::new();
        let first = encode_checker_msg(&CheckerMsg::End);
        let second = encode_executor_batch(&[ExecutorMsg::acted(StateUpdate::Full(snapshot()))]);
        write_frame(&mut stream, &first).unwrap();
        write_frame(&mut stream, &second).unwrap();
        let mut cursor = &stream[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&first[..])
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&second[..])
        );
        // Clean EOF between frames is a session close, not an error.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_panicked() {
        // Unknown tag.
        assert!(matches!(
            decode_checker_msg(&[9]),
            Err(WireError::Malformed(_))
        ));
        // Truncation at every prefix of a real message.
        let bytes = encode_executor_batch(&[ExecutorMsg::acted(StateUpdate::Delta(delta()))]);
        for cut in 0..bytes.len() {
            assert!(
                decode_executor_batch(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage.
        let mut padded = encode_checker_msg(&CheckerMsg::End);
        padded.push(0);
        assert!(matches!(
            decode_checker_msg(&padded),
            Err(WireError::Malformed(_))
        ));
        // Oversized frame prefixes are refused before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn symbols_re_intern_by_content() {
        let msg = CheckerMsg::Start {
            dependencies: vec![Selector::new("#fresh-selector-for-wire-test")],
        };
        let decoded = decode_checker_msg(&encode_checker_msg(&msg)).unwrap();
        let CheckerMsg::Start { dependencies } = decoded else {
            panic!("variant changed in flight");
        };
        // Selector equality is symbol equality, which is string equality —
        // the decode side re-interned and landed on the same symbol.
        assert_eq!(
            dependencies[0],
            Selector::new("#fresh-selector-for-wire-test")
        );
    }
}
