//! # quickstrom-protocol
//!
//! The message protocol between the Quickstrom *checker* and an *executor*
//! (paper §3.4, Figure 9), together with the state-snapshot and action
//! vocabulary both sides share.
//!
//! The checker evaluates the QuickLTL formula and selects actions; an
//! executor actually drives the system under test — a web application
//! behind a (virtual) DOM, a CCS process, or anything else that can answer
//! state queries. Nothing in the checker is specific to any executor, which
//! is why these types live in their own dependency-free crate.
//!
//! All types are `serde`-serializable so that a checker and an executor can
//! live in separate processes, exactly as in the original system. One
//! caveat since interning: [`Symbol`] (and types embedding it, like
//! [`Selector`] and [`ElementState::attributes`]) is a process-local table
//! index — a cross-process wire format must serialize symbols as their
//! *strings* and re-intern on receipt. The vendored offline `serde` is a
//! no-op shim; when swapping in the real crate, give `Symbol` string-based
//! `Serialize`/`Deserialize` impls (`as_str` out, `intern` in) rather than
//! deriving over the raw index.
//!
//! ## The protocol (Figure 9)
//!
//! | Checker → Executor | Executor → Checker |
//! |---|---|
//! | [`CheckerMsg::Start`] — begin a session, declaring the relevant selectors | [`ExecutorMsg::Event`] — an asynchronous event occurred, with the updated state |
//! | [`CheckerMsg::Act`] — perform an action (rejected if `version` is stale) | [`ExecutorMsg::Acted`] — the action was performed, with the updated state |
//! | [`CheckerMsg::Wait`] — request a timeout signal | [`ExecutorMsg::Timeout`] — the timeout elapsed, with the (possibly) updated state |
//!
//! Versioning (Figure 10): the application under test runs concurrently and
//! may change state while the checker deliberates. Every `Act`/`Wait`
//! carries the length of the trace as the checker knows it; an executor
//! whose trace has since grown ignores the stale request, and the checker,
//! upon seeing the event notifications that grew the trace, re-decides.
//!
//! ## Incremental state (beyond Figure 9)
//!
//! Executor messages carry a [`StateUpdate`] rather than a bare snapshot:
//! after the initial full [`StateSnapshot`], an incremental executor ships
//! [`SnapshotDelta`]s — per-selector element edits plus a monotone
//! `state_version` — and the checker reconstructs states by applying them
//! onto the previous state ([`StateUpdate::resolve`]), sharing the query
//! results of every unchanged selector. See the [`delta`] module docs for
//! the algebra and its guarantees.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod fingerprint;
pub mod intern;
pub mod messages;
pub mod snapshot;
pub mod wire;

pub use delta::{
    DeltaError, QueryDelta, SnapshotDelta, StateUpdate, TransportStats, DELTA_FORMAT_VERSION,
};
pub use fingerprint::{
    element_projection_hash, element_shape_hash, fingerprint_state, fingerprint_state_masked,
    masked_query_term, query_term, text_bucket, FieldMask, ProjectionHash, StateFingerprint,
};
pub use intern::{sym, Symbol};
pub use messages::{ActionInstance, ActionKind, CheckerMsg, ExecutorMsg, Key};
pub use snapshot::{ElementState, QueryResults, Selector, StateSnapshot};

/// An executor for the Quickstrom protocol.
///
/// An executor owns a running system under test. [`Executor::send`]
/// delivers one checker message and returns every executor message emitted
/// before the executor next goes idle — performing the action, firing due
/// timers, and reporting asynchronous events, in order. A stale
/// [`CheckerMsg::Act`] produces no [`ExecutorMsg::Acted`]; the returned
/// events are exactly the notifications the checker had not yet seen
/// (Figure 10's race, made deterministic).
///
/// State payloads are [`StateUpdate`]s: the first message of a session
/// carries a full [`StateSnapshot`], and an incremental executor ships
/// [`SnapshotDelta`]s from then on. Executors that never compute deltas
/// simply wrap every snapshot in [`StateUpdate::Full`].
pub trait Executor {
    /// Delivers one checker message; returns the executor's replies in
    /// order.
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg>;

    /// Transport statistics accumulated over this session so far (bytes
    /// shipped vs the full-snapshot counterfactual, delta counts).
    /// Executors that don't track transport report empty stats.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

impl<T: Executor + ?Sized> Executor for Box<T> {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        (**self).send(msg)
    }

    fn transport_stats(&self) -> TransportStats {
        (**self).transport_stats()
    }
}
