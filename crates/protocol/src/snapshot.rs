//! State snapshots: the executor's view of the system under test.
//!
//! A Quickstrom specification never inspects the whole application — only
//! the parts reachable through the CSS selectors it mentions (§3.3). The
//! executor is told those selectors at [`Start`](crate::CheckerMsg::Start)
//! time and thereafter includes, in every message, a [`StateSnapshot`]
//! mapping each relevant selector to the projections of its matched
//! elements.

use crate::intern::Symbol;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A CSS selector, as written between backticks in a Specstrom
/// specification.
///
/// The protocol treats selectors as opaque strings; the web executor parses
/// them with the `webdom` selector engine. Internally the text is interned
/// ([`Symbol`]) and the `'static` string it resolves to is cached inline,
/// so cloning is a copy, equality and hashing are O(1) on the symbol, and
/// neither `as_str` nor comparison ever touches the global interner lock.
/// Ordering compares the *text* (not the intern index), so sorted
/// collections of selectors stay in the stable alphabetical order that
/// dependency lists and reports rely on.
///
/// # Examples
///
/// ```
/// use quickstrom_protocol::Selector;
/// let s = Selector::new("#toggle");
/// assert_eq!(s.as_str(), "#toggle");
/// assert_eq!(s.to_string(), "`#toggle`");
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Selector {
    sym: Symbol,
    text: &'static str,
}

impl Selector {
    /// Interns a selector string.
    pub fn new(s: impl AsRef<str>) -> Self {
        let sym = Symbol::intern(s.as_ref());
        Selector {
            sym,
            text: sym.as_str(),
        }
    }

    /// The selector text (no interner access; the `'static` resolution is
    /// cached at construction).
    #[must_use]
    pub fn as_str(&self) -> &str {
        self.text
    }

    /// The interned selector symbol.
    #[must_use]
    pub fn symbol(&self) -> Symbol {
        self.sym
    }
}

impl PartialEq for Selector {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Selector {}

impl std::hash::Hash for Selector {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl Ord for Selector {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.sym == other.sym {
            // Fast path: same symbol means same text.
            Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

impl PartialOrd for Selector {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl From<&str> for Selector {
    fn from(s: &str) -> Self {
        Selector::new(s)
    }
}

impl From<String> for Selector {
    fn from(s: String) -> Self {
        Selector::new(s)
    }
}

/// The observable projection of a single DOM element.
///
/// This is what Selenium-style acceptance testing can see of an element:
/// its visible text, form value, checkedness, enabledness, visibility,
/// classes and attributes. Specstrom member access (`` `#e`.text ``) reads
/// these fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementState {
    /// Concatenated visible text content.
    pub text: String,
    /// The form value (inputs), empty for non-inputs.
    pub value: String,
    /// Whether a checkbox/radio is checked.
    pub checked: bool,
    /// Whether the element is enabled (not `disabled`).
    pub enabled: bool,
    /// Whether the element is rendered visible.
    pub visible: bool,
    /// Whether the element currently has focus.
    pub focused: bool,
    /// The element's CSS classes, sorted.
    pub classes: Vec<String>,
    /// Other attributes, keyed by interned attribute name. Keys are
    /// interned once when the DOM is built, so projecting attributes into
    /// evaluator records never re-hashes the key strings.
    pub attributes: BTreeMap<Symbol, String>,
}

impl ElementState {
    /// A fresh element projection with the given text, enabled and visible.
    pub fn with_text(text: impl Into<String>) -> Self {
        ElementState {
            text: text.into(),
            enabled: true,
            visible: true,
            ..ElementState::default()
        }
    }

    /// Returns `true` if the element carries the given class.
    #[must_use]
    pub fn has_class(&self, class: &str) -> bool {
        self.classes.iter().any(|c| c == class)
    }

    /// An estimate of this projection's encoded size on a wire, in bytes
    /// (see [`StateSnapshot::wire_size`] for the encoding model).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let strings = |s: &str| 4 + s.len();
        strings(&self.text)
            + strings(&self.value)
            + 4 // the four booleans
            + 4
            + self.classes.iter().map(|c| strings(c)).sum::<usize>()
            + 4
            + self
                .attributes
                .iter()
                .map(|(k, v)| strings(k.as_str()) + strings(v))
                .sum::<usize>()
    }
}

/// The shared element-list type of per-selector query results.
///
/// Query results are reference-counted so that snapshots, deltas applied
/// onto them, and recorded traces all share the same allocation for
/// selectors whose projections did not change between states: cloning a
/// [`StateSnapshot`] or keeping one per trace step costs O(selectors)
/// pointer bumps, not a deep copy of every element.
pub type QueryResults = Arc<Vec<ElementState>>;

/// A snapshot of all relevant state at one moment of the trace.
///
/// `queries` maps each relevant selector to its matched elements in
/// document order (empty when nothing matches). `happened` is the paper's
/// special state variable: the names of the actions or events that occurred
/// *immediately prior* to this state (§3.2). The executor leaves
/// `happened` empty for `Acted` states — the checker knows which action it
/// requested and fills it in — but sets it for `Event` states.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// Selector → matched element projections, in document order. The
    /// element lists are [`Arc`]-shared ([`QueryResults`]): cloning a
    /// snapshot, applying a [`SnapshotDelta`](crate::SnapshotDelta) onto
    /// it, or recording it in a trace shares the allocations of every
    /// unchanged selector.
    pub queries: BTreeMap<Selector, QueryResults>,
    /// Names of actions/events that produced this state, interned. The
    /// checker fills this once per step from the action/event vocabulary
    /// of the specification — symbols make that a copy of machine words
    /// instead of a `String` clone per name per step.
    pub happened: Vec<Symbol>,
    /// Virtual time at which the snapshot was taken, in milliseconds.
    pub timestamp_ms: u64,
}

impl StateSnapshot {
    /// Creates an empty snapshot at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        StateSnapshot::default()
    }

    /// Inserts a selector's matched elements (wrapping them in the shared
    /// [`QueryResults`] representation).
    pub fn insert_query(&mut self, selector: impl Into<Selector>, elements: Vec<ElementState>) {
        self.queries.insert(selector.into(), Arc::new(elements));
    }

    /// Inserts an already-shared result list without copying the elements.
    pub fn insert_shared(&mut self, selector: impl Into<Selector>, elements: QueryResults) {
        self.queries.insert(selector.into(), elements);
    }

    /// The elements matched by `selector`, or an empty slice.
    #[must_use]
    pub fn matches(&self, selector: &Selector) -> &[ElementState] {
        self.queries.get(selector).map_or(&[], |r| r.as_slice())
    }

    /// The first element matched by `selector`, if any.
    #[must_use]
    pub fn first(&self, selector: &Selector) -> Option<&ElementState> {
        self.matches(selector).first()
    }

    /// Did the named action or event produce this state?
    #[must_use]
    pub fn happened(&self, name: &str) -> bool {
        self.happened.iter().any(|h| h.as_str() == name)
    }

    /// Returns `true` when the queried projections (not `happened` or the
    /// timestamp) differ between the two snapshots. This is the semantic
    /// definition of "changed" that [`changed_selectors`] and the delta
    /// algebra agree with (the incremental executor itself detects change
    /// cheaper, by pointer equality over its memoised query handles).
    /// Stops at the first difference; selectors sharing the same
    /// [`QueryResults`] allocation compare in O(1).
    ///
    /// [`changed_selectors`]: StateSnapshot::changed_selectors
    #[must_use]
    pub fn queries_differ(&self, other: &StateSnapshot) -> bool {
        for (sel, elems) in &self.queries {
            match other.queries.get(sel) {
                Some(theirs) => {
                    if !Arc::ptr_eq(elems, theirs) && elems != theirs {
                        return true;
                    }
                }
                None => return true,
            }
        }
        other
            .queries
            .keys()
            .any(|sel| !self.queries.contains_key(sel))
    }

    /// The selectors whose projections differ between the two snapshots
    /// (in either direction — the relation is symmetric), in selector
    /// order. Shared allocations short-circuit the element comparison.
    #[must_use]
    pub fn changed_selectors(&self, other: &StateSnapshot) -> Vec<Selector> {
        let mut changed = Vec::new();
        for (sel, elems) in &self.queries {
            match other.queries.get(sel) {
                Some(theirs) => {
                    if !Arc::ptr_eq(elems, theirs) && elems != theirs {
                        changed.push(*sel);
                    }
                }
                None => changed.push(*sel),
            }
        }
        for sel in other.queries.keys() {
            if !self.queries.contains_key(sel) {
                changed.push(*sel);
            }
        }
        changed.sort();
        changed.dedup();
        changed
    }

    /// An estimate of this snapshot's encoded size on a wire, in bytes.
    ///
    /// The model is a compact tagged binary encoding: 4-byte length
    /// prefixes for strings and collections, 8 bytes per integer, 1 byte
    /// per boolean, and symbols serialized as their text (a cross-process
    /// transport cannot ship process-local intern indices — see the crate
    /// docs). The vendored offline `serde` is a no-op shim, so this
    /// deterministic estimate is what the transport statistics
    /// ([`crate::TransportStats`]) are measured in.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let strings = |s: &str| 4 + s.len();
        4 + self
            .queries
            .iter()
            .map(|(sel, elems)| StateSnapshot::query_wire_size(sel, elems))
            .sum::<usize>()
            + 4
            + self
                .happened
                .iter()
                .map(|h| strings(h.as_str()))
                .sum::<usize>()
            + 8 // timestamp_ms
    }

    /// The wire-size contribution of one selector's entry in `queries` —
    /// the per-selector term of [`StateSnapshot::wire_size`], exposed so
    /// executors can maintain a running full-snapshot counterfactual in
    /// O(changed) without re-stating the encoding model.
    #[must_use]
    pub fn query_wire_size(selector: &Selector, elements: &[ElementState]) -> usize {
        4 + selector.as_str().len()
            + 4
            + elements.iter().map(ElementState::wire_size).sum::<usize>()
    }

    /// The wire size of a [`StateUpdate::Full`](crate::StateUpdate)
    /// carrying a snapshot whose query entries total `queries_bytes` and
    /// whose `happened` list is empty (executors leave `happened` to the
    /// checker): the variant tag plus the framing of
    /// [`StateSnapshot::wire_size`].
    #[must_use]
    pub fn full_update_wire_size(queries_bytes: usize) -> usize {
        1 + 4 + queries_bytes + 4 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, &[&str])]) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        for (sel, texts) in pairs {
            s.insert_query(
                Selector::new(*sel),
                texts.iter().map(|t| ElementState::with_text(*t)).collect(),
            );
        }
        s
    }

    #[test]
    fn selector_construction_and_display() {
        let s: Selector = "#toggle".into();
        assert_eq!(s.as_str(), "#toggle");
        assert_eq!(s.to_string(), "`#toggle`");
        let t = Selector::from(String::from(".todo-list li"));
        assert_eq!(t.as_str(), ".todo-list li");
    }

    #[test]
    fn element_state_helpers() {
        let mut e = ElementState::with_text("hi");
        assert!(e.enabled && e.visible && !e.checked);
        e.classes.push("completed".into());
        assert!(e.has_class("completed"));
        assert!(!e.has_class("editing"));
    }

    #[test]
    fn snapshot_queries() {
        let s = snap(&[("#a", &["x"]), (".items", &["1", "2"])]);
        assert_eq!(s.matches(&"#a".into()).len(), 1);
        assert_eq!(s.first(&".items".into()).unwrap().text, "1");
        assert!(s.matches(&"#missing".into()).is_empty());
        assert_eq!(s.first(&"#missing".into()), None);
    }

    #[test]
    fn happened_lookup() {
        let mut s = StateSnapshot::new();
        s.happened.push("click!".into());
        assert!(s.happened("click!"));
        assert!(!s.happened("tick?"));
    }

    #[test]
    fn change_detection_ignores_happened_and_time() {
        let mut a = snap(&[("#a", &["x"])]);
        let mut b = snap(&[("#a", &["x"])]);
        a.happened.push("one".into());
        b.timestamp_ms = 99;
        assert!(!a.queries_differ(&b));
        let c = snap(&[("#a", &["y"])]);
        assert!(a.queries_differ(&c));
        assert_eq!(a.changed_selectors(&c), vec![Selector::new("#a")]);
    }

    #[test]
    fn clones_share_query_allocations() {
        let a = snap(&[("#a", &["x"]), (".items", &["1", "2"])]);
        let b = a.clone();
        let sel = Selector::new("#a");
        assert!(Arc::ptr_eq(&a.queries[&sel], &b.queries[&sel]));
        // Shared allocations still compare equal (and cheaply).
        assert!(!a.queries_differ(&b));
    }

    #[test]
    fn wire_size_tracks_content() {
        let small = snap(&[("#a", &["x"])]);
        let big = snap(&[("#a", &["x"]), (".items", &["one", "two", "three"])]);
        assert!(big.wire_size() > small.wire_size());
        let empty = StateSnapshot::new();
        assert_eq!(empty.wire_size(), 4 + 4 + 8);
    }

    #[test]
    fn changed_selectors_cover_added_and_removed() {
        let a = snap(&[("#a", &["x"]), ("#b", &["y"])]);
        let b = snap(&[("#a", &["x"]), ("#c", &["z"])]);
        let changed = a.changed_selectors(&b);
        assert_eq!(changed, vec![Selector::new("#b"), Selector::new("#c")]);
    }
}
