//! The bundled Specstrom specifications compile with the expected shape:
//! actions, events, checks, and instrumented selectors. Guards against
//! silent drift between the spec files and the systems they describe.

use quickstrom::prelude::*;
use quickstrom::specstrom;

#[test]
fn todomvc_spec_structure() {
    let spec = specstrom::load(quickstrom::specs::TODOMVC)
        .unwrap_or_else(|e| panic!("{}", e.render(quickstrom::specs::TODOMVC)));
    // Twelve user actions, no declared events (the correct app is fully
    // synchronous; async faults surface as unexpected changed? states).
    assert_eq!(spec.actions.len(), 12);
    assert!(spec.actions.values().all(|a| !a.event));
    // One check command over the single safety property, unrestricted.
    assert_eq!(spec.checks.len(), 1);
    assert_eq!(spec.checks[0].properties, vec!["safety"]);
    assert_eq!(spec.checks[0].actions.len(), 12);
    // The dependency analysis finds every selector the views render.
    let deps: Vec<&str> = spec.dependencies.iter().map(Selector::as_str).collect();
    for expected in [
        ".clear-completed:visible",
        ".edit",
        ".edit:focus",
        ".filters",
        ".filters a.selected",
        ".filters a:visible",
        ".footer:visible",
        ".new-todo",
        ".todo-count",
        ".todo-count strong",
        ".todo-list li",
        ".todo-list li label",
        ".todo-list li label:visible",
        ".todo-list li.completed",
        ".todo-list li.editing",
        ".toggle",
        ".toggle-all:visible",
        ".toggle:visible",
        ".destroy:visible",
    ] {
        assert!(
            deps.contains(&expected),
            "missing dependency {expected}: {deps:?}"
        );
    }
}

#[test]
fn all_bundled_specs_compile() {
    for (name, src) in [
        ("todomvc", quickstrom::specs::TODOMVC),
        ("egg_timer", quickstrom::specs::EGG_TIMER),
        ("counter", quickstrom::specs::COUNTER),
        ("menu", quickstrom::specs::MENU),
        ("bigtable", quickstrom::specs::BIGTABLE),
    ] {
        let spec = specstrom::load(src).unwrap_or_else(|e| panic!("{name}: {}", e.render(src)));
        assert!(!spec.checks.is_empty(), "{name} has no check commands");
        for check in &spec.checks {
            for property in &check.properties {
                assert!(
                    spec.property_thunk(property).is_some(),
                    "{name}: property {property} unresolvable"
                );
            }
        }
    }
}

#[test]
fn bundled_specs_survive_the_pretty_printer() {
    // Print → re-parse → re-compile: formatted specifications stay valid.
    for src in [
        quickstrom::specs::TODOMVC,
        quickstrom::specs::EGG_TIMER,
        quickstrom::specs::COUNTER,
        quickstrom::specs::MENU,
        quickstrom::specs::BIGTABLE,
    ] {
        let parsed = specstrom::parse_spec(src).unwrap();
        let printed = specstrom::pretty_spec(&parsed);
        let compiled = specstrom::load(&printed)
            .unwrap_or_else(|e| panic!("{}\n--\n{printed}", e.render(&printed)));
        let original = specstrom::load(src).unwrap();
        assert_eq!(compiled.dependencies, original.dependencies);
        assert_eq!(
            compiled.actions.keys().collect::<Vec<_>>(),
            original.actions.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn bigtable_spec_structure() {
    let spec = specstrom::load(quickstrom::specs::BIGTABLE)
        .unwrap_or_else(|e| panic!("{}", e.render(quickstrom::specs::BIGTABLE)));
    // Eight user actions (select, bump, three sorts, three filters), no
    // declared events: the grid is fully synchronous.
    assert_eq!(spec.actions.len(), 8);
    assert!(spec.actions.values().all(|a| !a.event));
    assert_eq!(spec.checks.len(), 1);
    assert_eq!(spec.checks[0].properties, vec!["safety"]);
    // The dependency analysis finds the row selectors the grid renders —
    // the hundreds-of-elements queries the delta pipeline is measured on.
    let deps: Vec<&str> = spec.dependencies.iter().map(Selector::as_str).collect();
    for expected in [
        ".grid-row",
        ".grid-row.selected",
        ".grid-row.selected .cell-name",
        ".cell-value",
        "#shown-count",
        "#total-count",
        "#selected-name",
    ] {
        assert!(
            deps.contains(&expected),
            "missing dependency {expected}: {deps:?}"
        );
    }
}

#[test]
fn menu_spec_declares_the_event() {
    let spec = specstrom::load(quickstrom::specs::MENU).unwrap();
    let woke = spec.action("woke?").expect("woke? declared");
    assert!(woke.event);
    assert_eq!(woke.selector.as_ref().map(Selector::as_str), Some("#menu"));
    let wait = spec.action("wait!").expect("wait! declared");
    assert_eq!(wait.timeout_ms, Some(600));
}
