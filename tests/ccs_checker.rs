//! "Nothing about the checker is specific to Selenium WebDriver: paired
//! with a different executor, the same checker could be used to test any
//! reactive system" (§3.4). Here the same checker and the same Specstrom
//! language test CCS process models through the [`ccs::CcsExecutor`].

use ccs::{parse_definitions, CcsExecutor, Process};
use quickstrom::prelude::*;

/// Milner's vending machine: insert a coin, then choose tea or coffee.
const VENDING: &str = "Vend = coin.(tea.Vend + coffee.Vend);";

/// The vending machine specification: you can always insert a coin or pick
/// a drink; after a coin both drinks are offered; after a drink we are back
/// to accepting coins.
const VENDING_SPEC: &str = r#"
    let ~coinReady = `.act-coin`.present;
    let ~teaReady = `.act-tea`.present;
    let ~coffeeReady = `.act-coffee`.present;

    action coin!   = click!(`.act-coin`)   when coinReady;
    action tea!    = click!(`.act-tea`)    when teaReady;
    action coffee! = click!(`.act-coffee`) when coffeeReady;

    let ~buyCoin = coinReady
      && nextW (coin! in happened && teaReady && coffeeReady && !coinReady);
    let ~buyTea = teaReady
      && nextW (tea! in happened && coinReady && !teaReady);
    let ~buyCoffee = coffeeReady
      && nextW (coffee! in happened && coinReady && !coffeeReady);

    let ~safety = loaded? in happened && coinReady
      && always[20] (buyCoin || buyTea || buyCoffee);

    let ~serviceLoop = always[20] eventually[3] coinReady;

    check safety serviceLoop;
"#;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(10)
        .with_max_actions(30)
        .with_default_demand(20)
        .with_seed(5)
}

fn check_model(model: &str, spec_src: &str, opts: &CheckOptions) -> Report {
    let spec = specstrom::load(spec_src).unwrap_or_else(|e| panic!("{}", e.render(spec_src)));
    let model = model.to_owned();
    check_spec(&spec, opts, &move || {
        let (defs, main) = parse_definitions(&model).expect("valid CCS");
        Box::new(CcsExecutor::new(defs, Process::Const(main)))
    })
    .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn vending_machine_satisfies_its_spec() {
    let report = check_model(VENDING, VENDING_SPEC, &options());
    assert!(report.passed(), "{report}");
    assert_eq!(report.properties.len(), 2);
}

#[test]
fn broken_vending_machine_is_caught() {
    // This machine swallows the coin on the tea path: after tea it needs a
    // *second* coin before offering drinks again — `buyTea` requires
    // `coinReady` right after tea, which holds, but then the extra coin
    // state breaks `buyCoin`'s promise of drinks.
    let broken = "Vend = coin.(tea.coin.Vend + coffee.Vend);";
    let report = check_model(broken, VENDING_SPEC, &options());
    assert!(!report.passed(), "{report}");
    let cx = report.properties[0].counterexample().unwrap();
    assert_eq!(cx.verdict, Verdict::DefinitelyFalse);
}

#[test]
fn deadlocking_machine_fails_the_service_loop() {
    // After one serving the machine dies.
    let dying = "Vend = coin.(tea.0 + coffee.0);";
    let report = check_model(dying, VENDING_SPEC, &options());
    assert!(!report.passed(), "{report}");
    assert!(report.failures().contains(&"serviceLoop") || report.failures().contains(&"safety"));
}

#[test]
fn synchronised_producer_consumer_model() {
    // A producer and consumer synchronising over a restricted channel: the
    // checker sees `put` (producer input) and `get` (consumer output is
    // internalised; the observable is the consumer's deliver action).
    let model = "Sys = (put.'hand.Sys | hand.deliver.Sys) \\ {hand};";
    let spec = r#"
        let ~canPut = `.act-put`.present;
        let ~canDeliver = `.act-deliver`.present;
        action put! = click!(`.act-put`) when canPut;
        action deliver! = click!(`.act-deliver`) when canDeliver;
        // After a put, the handoff is internal (τ) and the delivery becomes
        // available.
        let ~handoff = canPut
          && nextW (put! in happened ==> canDeliver);
        let ~safety = loaded? in happened && always[15] handoff;
        check safety;
    "#;
    let report = check_model(model, spec, &options());
    assert!(report.passed(), "{report}");
}
