//! Experiment E5: the egg timer worked example (Figure 8).
//!
//! The integration tests use a 15-second timer and proportionally smaller
//! demand subscripts so runs stay short; the shipped `specs/egg_timer.strom`
//! is the Figure 8-faithful 180-second version (exercised by the
//! `egg_timer` example binary) and is compile-checked here.

use quickstrom::prelude::*;
use quickstrom_apps::EggTimer;

/// The Figure 8 specification scaled to a 15-second timer.
fn scaled_spec(initial: i64) -> String {
    format!(
        r#"
        let ~stopped = `#toggle`.text == "start";
        let ~started = `#toggle`.text == "stop";
        let ~time = parseInt(`#remaining`.text);
        action start! = click!(`#toggle`) when stopped;
        action stop!  = click!(`#toggle`) when started;
        action wait!  = noop! timeout 1100 when started;
        action tick?  = changed?(`#remaining`);
        let ~ticking {{
          let old = time;
          started && nextW (tick? in happened
            && time == old - 1
            && (if time == 0 {{ stopped }} else {{ started }}))
        }};
        let ~waiting = started && nextW (wait! in happened && started);
        let ~starting =
          stopped && nextW (start! in happened
            && (if time == 0 {{ stopped }} else {{ started }}));
        let ~stopping = started && nextW (stop! in happened && stopped);
        let ~safety =
          loaded? in happened && time == {initial}
          && always[50] (starting || stopping || waiting || ticking);
        let ~liveness =
          always[50] (start! in happened ==> eventually[45] stopped);
        let ~timeUp =
          always[50] (start! in happened ==> eventually[45] (time == 0));
        check safety liveness;
        check timeUp with start! wait! tick?;
        "#
    )
}

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(5)
        .with_max_actions(60)
        .with_default_demand(50)
        .with_seed(11)
}

fn run_checks(spec_src: &str, duration: i64, opts: &CheckOptions) -> Report {
    let spec = specstrom::load(spec_src).unwrap_or_else(|e| panic!("{}", e.render(spec_src)));
    check_spec(&spec, opts, &move || {
        Box::new(WebExecutor::new(move || EggTimer::with_duration(duration)))
    })
    .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn pausing_timer_satisfies_all_properties() {
    let report = run_checks(&scaled_spec(15), 15, &options());
    assert!(report.passed(), "{report}");
    assert_eq!(report.properties.len(), 3, "safety, liveness, timeUp");
}

#[test]
fn resetting_timer_satisfies_the_same_spec() {
    // §5.4: the specification "intentionally applies both to timers that
    // reset when stopped and to timers that pause when stopped".
    let spec = specstrom::load(&scaled_spec(15)).unwrap();
    let report = check_spec(&spec, &options(), &|| {
        Box::new(WebExecutor::new(|| EggTimer::resetting_with_duration(15)))
    })
    .unwrap();
    assert!(report.passed(), "{report}");
}

#[test]
fn broken_timer_that_skips_seconds_fails_safety() {
    /// An egg timer whose tick decrements by two — violates `ticking`.
    #[derive(Debug)]
    struct SkippingTimer(EggTimer);
    impl webdom::App for SkippingTimer {
        fn start(&mut self, ctx: &mut webdom::AppCtx<'_>) {
            self.0.start(ctx);
        }
        fn view(&self) -> webdom::El {
            self.0.view()
        }
        fn on_event(&mut self, msg: &str, p: &webdom::Payload, ctx: &mut webdom::AppCtx<'_>) {
            self.0.on_event(msg, p, ctx);
        }
        fn on_timer(&mut self, tag: &str, ctx: &mut webdom::AppCtx<'_>) {
            // Tick twice: time jumps by two seconds.
            self.0.on_timer(tag, ctx);
            self.0.on_timer(tag, ctx);
        }
    }

    let spec = specstrom::load(&scaled_spec(15)).unwrap();
    let report = check_spec(&spec, &options(), &|| {
        Box::new(WebExecutor::new(|| {
            SkippingTimer(EggTimer::with_duration(15))
        }))
    })
    .unwrap();
    assert!(!report.passed(), "skipping timer must fail:\n{report}");
    let failures = report.failures();
    assert!(failures.contains(&"safety"), "failures: {failures:?}");
}

#[test]
fn wrong_initial_time_fails_immediately() {
    let report = run_checks(&scaled_spec(14), 15, &options().with_tests(1));
    assert!(!report.passed());
    let cx = report.properties[0].counterexample().unwrap();
    assert_eq!(
        cx.script.len(),
        0,
        "the initial state already refutes: {cx}"
    );
}

#[test]
fn shipped_fig8_spec_compiles_with_expected_structure() {
    let spec = specstrom::load(quickstrom::specs::EGG_TIMER)
        .unwrap_or_else(|e| panic!("{}", e.render(quickstrom::specs::EGG_TIMER)));
    // Fig. 8: four actions/events …
    assert_eq!(spec.actions.len(), 4);
    assert!(spec.action("start!").is_some());
    assert!(spec.action("stop!").is_some());
    assert!(spec.action("wait!").unwrap().timeout_ms == Some(1100));
    assert!(spec.action("tick?").unwrap().event);
    // … two check commands, the second restricted (excluding stop!).
    assert_eq!(spec.checks.len(), 2);
    assert_eq!(spec.checks[0].properties, vec!["safety", "liveness"]);
    assert_eq!(spec.checks[1].properties, vec!["timeUp"]);
    assert_eq!(spec.checks[1].actions, vec!["start!", "wait!"]);
    // Dependencies: exactly the two selectors of the UI.
    let deps: Vec<&str> = spec.dependencies.iter().map(|s| s.as_str()).collect();
    assert_eq!(deps, vec!["#remaining", "#toggle"]);
}
