//! The Wizard deep-state corridor: the specification holds on the
//! correct implementation under every strategy, and coverage-guided
//! exploration actually penetrates the corridor — novelty-guided runs
//! complete the five-step flow far more often than uniform runs with the
//! same budget (breadth metrics are measured on TodoMVC/BigTable by
//! `evalharness coverage-compare`; the corridor's claim is *depth*).

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::wizard::{Wizard, STEPS};
use quickstrom::webdom::{App, AppCtx, El, Payload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(25)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(11)
        .with_shrink(false)
}

/// A [`Wizard`] that reports flow completions into a shared counter, so
/// tests can measure how deep each strategy actually got.
struct CountingWizard {
    inner: Wizard,
    completions: Arc<AtomicUsize>,
}

impl App for CountingWizard {
    fn start(&mut self, ctx: &mut AppCtx<'_>) {
        self.inner.start(ctx);
    }

    fn view(&self) -> El {
        self.inner.view()
    }

    fn on_event(&mut self, msg: &str, payload: &Payload, ctx: &mut AppCtx<'_>) {
        let before = self.inner.step();
        self.inner.on_event(msg, payload, ctx);
        if before != STEPS && self.inner.step() == STEPS {
            self.completions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_timer(&mut self, tag: &str, ctx: &mut AppCtx<'_>) {
        self.inner.on_timer(tag, ctx);
    }
}

fn check_counting(strategy: SelectionStrategy) -> (Report, usize) {
    let spec = specstrom::load(quickstrom::specs::WIZARD)
        .unwrap_or_else(|e| panic!("{}", e.render(quickstrom::specs::WIZARD)));
    let completions = Arc::new(AtomicUsize::new(0));
    let handle = Arc::clone(&completions);
    let report = check_spec(&spec, &options().with_strategy(strategy), &move || {
        Box::new(WebExecutor::new({
            let completions = Arc::clone(&handle);
            move || CountingWizard {
                inner: Wizard::new(),
                completions: Arc::clone(&completions),
            }
        }))
    })
    .unwrap_or_else(|e| panic!("{e}"));
    let count = completions.load(Ordering::Relaxed);
    (report, count)
}

#[test]
fn wizard_satisfies_its_specification_under_every_strategy() {
    for strategy in SelectionStrategy::ALL {
        let (report, _) = check_counting(strategy);
        assert!(report.passed(), "{strategy}: {report}");
        assert!(report.properties[0].actions_total > 100);
    }
}

#[test]
fn novelty_penetrates_the_corridor_deeper_than_uniform() {
    let (_, uniform_completions) = check_counting(SelectionStrategy::UniformRandom);
    let (novelty_report, novelty_completions) = check_counting(SelectionStrategy::Novelty);
    assert!(
        novelty_completions > uniform_completions,
        "novelty completed the flow {novelty_completions}× vs uniform's \
         {uniform_completions}× — replay-then-extend should dominate on a \
         gated corridor",
    );
    let coverage = novelty_report.coverage();
    assert!(coverage.corpus_replays > 0, "corpus scheduling never fired");
    assert!(coverage.corpus_size > 0);
}

#[test]
fn coverage_stats_surface_in_the_report() {
    let (report, _) = check_counting(SelectionStrategy::Novelty);
    let coverage = report.properties[0].coverage;
    assert!(coverage.distinct_states > 1);
    assert!(coverage.distinct_edges > 0);
    // And uniform reports coverage too (without any corpus activity).
    let (uniform, _) = check_counting(SelectionStrategy::UniformRandom);
    let uc = uniform.properties[0].coverage;
    assert!(uc.distinct_states > 1);
    assert_eq!(uc.corpus_replays, 0);
    assert_eq!(uc.corpus_size, 0);
}
