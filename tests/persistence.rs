//! Persistence testing through page reloads — the future work of §4.1
//! ("We expect that this could be modelled by inserting page reloads as
//! another possible action, and may expose further problems in the
//! implementations' handling of local storage"), implemented as an
//! extension.
//!
//! The `reload!` primitive rebuilds the application while preserving local
//! storage; the specification requires the to-do list (texts *and*
//! completion states) to survive, the pending input to clear, and the
//! filter to return to "All".

use quickstrom::prelude::*;
use quickstrom_apps::todomvc::TodoMvc;

const PERSISTENCE_SPEC: &str = r#"
    let ~itemTexts = texts(`.todo-list li label`);
    let ~completedCount = `.todo-list li.completed`.count;
    let ~pendingText = `.new-todo`.value;
    let ~notEditing = `.todo-list li.editing`.count == 0;

    action typeNew!    = input!(`.new-todo`)             when notEditing;
    action addNew!     = keypress!(`.new-todo`, "Enter") when notEditing;
    action toggleItem! = click!(`.toggle:visible`)       when notEditing;
    action reloadPage! = reload!                         when notEditing;

    // Mutating transitions, kept deliberately loose — the persistence
    // property is the point here.
    let ~mutate =
      nextW (typeNew! in happened || addNew! in happened || toggleItem! in happened);

    // The reload transition: the whole list — texts and completion states —
    // survives; the pending input does not; the filter resets to All (so
    // every item is visible again).
    let ~reloadStep {
      let oldTexts = itemTexts;
      let oldCompleted = completedCount;
      nextW (reloadPage! in happened
        && itemTexts == oldTexts
        && completedCount == oldCompleted
        && pendingText == ""
        && `.filters a.selected`.text == "All")
    };

    let ~persistence =
      loaded? in happened
      && always (mutate || reloadStep);

    check persistence with typeNew! addNew! toggleItem! reloadPage!;
"#;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(25)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(77)
}

fn run(app: impl Fn() -> TodoMvc + Clone + Send + Sync + 'static) -> Report {
    let spec = specstrom::load(PERSISTENCE_SPEC)
        .unwrap_or_else(|e| panic!("{}", e.render(PERSISTENCE_SPEC)));
    check_spec(&spec, &options(), &move || {
        let app = app.clone();
        Box::new(WebExecutor::new(app))
    })
    .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn correct_todomvc_survives_reloads() {
    let report = run(TodoMvc::correct);
    assert!(report.passed(), "{report}");
}

#[test]
fn forgotten_toggle_persistence_is_caught() {
    let report = run(|| TodoMvc::correct().with_broken_toggle_persistence());
    assert!(
        !report.passed(),
        "the unpersisted toggle must be exposed by a reload:\n{report}"
    );
    let cx = report.properties[0].counterexample().unwrap();
    // The shrunk reproduction is: create an item, toggle it, reload.
    let names: Vec<&str> = cx.script.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"toggleItem!"), "{names:?}");
    assert!(names.contains(&"reloadPage!"), "{names:?}");
}

#[test]
fn faulty_but_persistent_implementations_pass_this_spec() {
    // A Table 2 fault that has nothing to do with storage (bad plural
    // text) passes the persistence property: specifications are free to
    // check one aspect at a time (§5.4 — "the engineer … is free to leave
    // out details").
    use quickstrom_apps::todomvc::Fault;
    let report = run(|| TodoMvc::with_faults([Fault::BadPluralization]));
    assert!(report.passed(), "{report}");
}
