//! Experiment E4: the checker/executor interaction of Figure 10, including
//! the stale-Act rejection.
//!
//! The paper's sequence: the checker clicks (Acted), the application
//! asynchronously changes (Event), the checker acknowledges by using the
//! longer trace length, presses a key (Acted), the application changes
//! again (Event) — but this time the checker's next request races the
//! event and carries a stale version, so the executor ignores it.

use quickstrom_executor::WebExecutor;
use quickstrom_protocol::{
    ActionInstance, ActionKind, CheckerMsg, Executor, ExecutorMsg, Key, Selector, StateSnapshot,
};
use webdom::{App, AppCtx, El, EventKind, Payload};

/// An app that mutates `#async` via a 0ms timer after every interaction —
/// the "application state is asynchronously changed" of Figure 10.
#[derive(Default)]
struct AsyncApp {
    clicks: u32,
    keys: u32,
    async_updates: u32,
}

impl App for AsyncApp {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {}

    fn view(&self) -> El {
        El::new("div").children([
            El::new("button")
                .id("button")
                .text(self.clicks.to_string())
                .on(EventKind::Click, "click"),
            El::new("input")
                .id("field")
                .value(self.keys.to_string())
                .on(EventKind::KeyDown, "key"),
            El::new("span")
                .id("async")
                .text(self.async_updates.to_string()),
        ])
    }

    fn on_event(&mut self, msg: &str, _payload: &Payload, ctx: &mut AppCtx<'_>) {
        match msg {
            "click" => {
                self.clicks += 1;
                ctx.clock.set_timeout("async", 0);
            }
            "key" => {
                self.keys += 1;
                ctx.clock.set_timeout("async", 0);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: &str, _ctx: &mut AppCtx<'_>) {
        if tag == "async" {
            self.async_updates += 1;
        }
    }
}

fn deps() -> Vec<Selector> {
    vec![
        Selector::new("#button"),
        Selector::new("#field"),
        Selector::new("#async"),
    ]
}

fn click(version: u64) -> CheckerMsg {
    CheckerMsg::Act {
        action: ActionInstance::targeted("click!", ActionKind::Click, "#button", 0),
        version,
    }
}

fn press_key(version: u64) -> CheckerMsg {
    CheckerMsg::Act {
        action: ActionInstance::targeted(
            "pressKey!",
            ActionKind::KeyPress(Key::Char('x')),
            "#field",
            0,
        ),
        version,
    }
}

/// Reconstructs the state carried by one reply, delta-aware: the executor
/// ships a full snapshot first and `SnapshotDelta`s afterwards, exactly
/// like a remote checker would see them.
fn absorb(last: &mut Option<StateSnapshot>, msg: &ExecutorMsg) -> StateSnapshot {
    let state = msg
        .update()
        .resolve(last.as_ref())
        .expect("resolvable update");
    *last = Some(state.clone());
    state
}

#[test]
fn figure_10_message_sequence() {
    let mut executor = WebExecutor::new(AsyncApp::default);
    let mut last: Option<StateSnapshot> = None;

    // Session start: the loaded? event is trace state 1.
    let r0 = executor.send(CheckerMsg::Start {
        dependencies: deps(),
    });
    assert_eq!(r0.len(), 1);
    assert!(matches!(&r0[0], ExecutorMsg::Event { event, .. } if event == "loaded?"));
    assert!(!r0[0].update().is_delta(), "first state must be full");
    absorb(&mut last, &r0[0]);

    // Checker: Act click! (version 1). Executor: Acted ⟨state⟩.
    let r1 = executor.send(click(1));
    assert_eq!(r1.len(), 1);
    assert!(r1[0].is_acted());
    assert!(r1[0].update().is_delta(), "later states ship as deltas");
    let s1 = absorb(&mut last, &r1[0]);
    assert_eq!(s1.first(&"#button".into()).unwrap().text, "1");

    // The application changes asynchronously: Event changed? ⟨state⟩ is
    // delivered while the checker deliberates — here, attached to the next
    // exchange. The checker acknowledges receipt by using trace length 3.
    let r2 = executor.send(press_key(2));
    assert_eq!(r2.len(), 1, "stale Act must be ignored: {r2:?}");
    assert!(
        matches!(&r2[0], ExecutorMsg::Event { event, .. } if event == "changed?"),
        "{r2:?}"
    );
    let s2 = absorb(&mut last, &r2[0]);
    assert_eq!(s2.first(&"#async".into()).unwrap().text, "1");

    // Checker retries with the acknowledged version: Act pressKey! 3 →
    // Acted ⟨state⟩.
    let r3 = executor.send(press_key(3));
    assert_eq!(r3.len(), 1);
    assert!(r3[0].is_acted());
    let s3 = absorb(&mut last, &r3[0]);
    assert_eq!(s3.first(&"#field".into()).unwrap().value, "1");

    // Again the app changes asynchronously; the checker's next request
    // carries the out-of-date trace length 4 (the paper's "3, not 4"
    // moment scaled by our loaded? state) and is ignored.
    let r4 = executor.send(press_key(4));
    assert_eq!(r4.len(), 1);
    assert!(
        matches!(&r4[0], ExecutorMsg::Event { event, .. } if event == "changed?"),
        "the stale pressKey! must produce no Acted: {r4:?}"
    );
    let s4 = absorb(&mut last, &r4[0]);
    assert_eq!(s4.first(&"#async".into()).unwrap().text, "2");

    // With the right version the action goes through.
    let r5 = executor.send(press_key(5));
    assert!(r5[0].is_acted());
    let s5 = absorb(&mut last, &r5[0]);
    assert_eq!(s5.first(&"#field".into()).unwrap().value, "2");
}

#[test]
fn wait_requests_are_version_checked_too() {
    let mut executor = WebExecutor::new(AsyncApp::default);
    executor.send(CheckerMsg::Start {
        dependencies: deps(),
    });
    executor.send(click(1));
    // A Wait with a stale version is ignored; the pending changed? event is
    // delivered instead.
    let r = executor.send(CheckerMsg::Wait {
        time_ms: 500,
        version: 1,
    });
    assert_eq!(r.len(), 1);
    assert!(matches!(&r[0], ExecutorMsg::Event { event, .. } if event == "changed?"));
    // A fresh Wait times out (no pending async work).
    let r2 = executor.send(CheckerMsg::Wait {
        time_ms: 500,
        version: 3,
    });
    assert_eq!(r2.len(), 1);
    assert!(matches!(&r2[0], ExecutorMsg::Timeout { .. }));
}
