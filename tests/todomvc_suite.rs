//! End-to-end TodoMVC checks (experiments E1/E2 groundwork).
//!
//! The correct implementation must survive the formal specification; every
//! fault class of Table 2 must be exposed. The full 43-implementation
//! sweep lives in the `evalharness` binary; these tests pin down the
//! per-fault detection that Table 1/2 aggregate.

use quickstrom::prelude::*;
use quickstrom_apps::todomvc::{Fault, TodoMvc};

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(30)
        .with_max_actions(60)
        .with_default_demand(50)
        .with_seed(7)
}

fn check_app(
    app_factory: impl Fn() -> TodoMvc + Clone + Send + Sync + 'static,
    options: &CheckOptions,
) -> Report {
    let spec = specstrom::load(quickstrom::specs::TODOMVC)
        .unwrap_or_else(|e| panic!("{}", e.render(quickstrom::specs::TODOMVC)));
    check_spec(&spec, options, &move || {
        let factory = app_factory.clone();
        Box::new(WebExecutor::new(factory))
    })
    .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn correct_implementation_passes() {
    let report = check_app(TodoMvc::correct, &options().with_tests(15));
    assert!(report.passed(), "correct TodoMVC flagged:\n{report}");
    // Sanity: runs actually did something.
    assert!(report.properties[0].actions_total > 100);
}

fn assert_fault_caught(fault: Fault, options: &CheckOptions) {
    let report = check_app(move || TodoMvc::with_faults([fault]), options);
    assert!(
        !report.passed(),
        "fault {} ({}) survived the specification",
        fault.number(),
        fault.description()
    );
    let cx = report.properties[0]
        .counterexample()
        .expect("failed property has a counterexample");
    assert!(
        !cx.verdict.to_bool(),
        "counterexample verdict must be falsifying"
    );
}

#[test]
fn fault01_no_checkboxes_is_caught() {
    assert_fault_caught(Fault::NoCheckboxes, &options());
}

#[test]
fn fault02_no_filters_is_caught() {
    assert_fault_caught(Fault::NoFilters, &options());
}

#[test]
fn fault03_missing_strong_is_caught() {
    assert_fault_caught(Fault::MissingStrongElement, &options());
}

#[test]
fn fault04_blank_items_is_caught() {
    assert_fault_caught(Fault::BlankItemsAllowed, &options());
}

#[test]
fn fault05_edit_not_focused_is_caught() {
    assert_fault_caught(Fault::EditNotFocused, &options());
}

#[test]
fn fault06_bad_pluralization_is_caught() {
    assert_fault_caught(Fault::BadPluralization, &options());
}

#[test]
fn fault07_pending_cleared_is_caught() {
    assert_fault_caught(Fault::PendingCleared, &options());
}

#[test]
fn fault08_pending_committed_is_caught() {
    assert_fault_caught(Fault::PendingCommitted, &options());
}

#[test]
fn fault09_toggle_all_ignores_hidden_is_caught() {
    assert_fault_caught(Fault::ToggleAllIgnoresHidden, &options().with_tests(60));
}

#[test]
fn fault10_toggle_all_hidden_by_filter_is_caught() {
    assert_fault_caught(Fault::ToggleAllHiddenByFilter, &options());
}

#[test]
fn fault11_empty_edit_zombie_is_caught() {
    // The paper calls this one "particularly involved to uncover" (§4.2);
    // give it more runs.
    assert_fault_caught(Fault::EmptyEditZombie, &options().with_tests(120));
}

#[test]
fn fault12_editing_hides_others_is_caught() {
    assert_fault_caught(Fault::EditingHidesOthers, &options());
}

#[test]
fn fault13_add_resets_filter_is_caught() {
    assert_fault_caught(Fault::AddResetsFilter, &options());
}

#[test]
fn fault14_add_shows_empty_first_is_caught() {
    assert_fault_caught(Fault::AddShowsEmptyFirst, &options());
}

#[test]
fn counterexamples_are_shrunk_and_replayable() {
    // Fault 13 needs: set a non-All filter, then add — the shrunk script
    // should be small.
    let report = check_app(
        || TodoMvc::with_faults([Fault::AddResetsFilter]),
        &options(),
    );
    let cx = report.properties[0].counterexample().unwrap();
    assert!(
        cx.script.len() <= 8,
        "expected a small shrunk script, got {} actions:\n{cx}",
        cx.script.len()
    );
}
