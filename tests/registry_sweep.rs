//! A fast slice of experiment E1: a sample of the Table 1 registry checked
//! end to end, asserting agreement with the paper's verdicts. The full
//! 43-implementation sweep lives in `evalharness table1`.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::registry;

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(40)
        .with_max_actions(60)
        .with_default_demand(50)
        .with_seed(20220322)
        .with_shrink(false)
}

fn check(name: &str) -> bool {
    let entry = registry::by_name(name).unwrap_or_else(|| panic!("unknown {name}"));
    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("spec compiles");
    let report = check_spec(&spec, &options(), &move || {
        Box::new(WebExecutor::new(|| entry.build()))
    })
    .expect("no protocol errors");
    report.passed()
}

#[test]
fn a_sample_of_passing_implementations_pass() {
    for name in [
        "vue",
        "react",
        "elm-like-binding-scala",
        "backbone",
        "kotlin-react",
    ] {
        let name = if name == "elm-like-binding-scala" {
            "binding-scala"
        } else {
            name
        };
        assert!(check(name), "{name} should pass");
    }
}

#[test]
fn a_sample_of_failing_implementations_fail() {
    for name in ["vanillajs", "elm", "jquery", "polymer", "dijon"] {
        assert!(!check(name), "{name} should fail");
    }
}

#[test]
fn the_registry_has_the_table1_shape() {
    use quickstrom::quickstrom_apps::registry::{Maturity, REGISTRY};
    assert_eq!(REGISTRY.len(), 43);
    let (passing, failing): (Vec<_>, Vec<_>) = REGISTRY.iter().partition(|e| !e.expected_to_fail());
    assert_eq!((passing.len(), failing.len()), (23, 20));
    let beta = |es: &[&registry::Entry]| es.iter().filter(|e| e.maturity == Maturity::Beta).count();
    assert_eq!(beta(&passing), 9);
    assert_eq!(beta(&failing), 8);
}
