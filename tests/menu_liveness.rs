//! The §2.1 motivating example end-to-end: a menu that is never disabled
//! forever passes `always eventually enabled` under QuickLTL demands, while
//! a menu that wedges permanently is caught; and the RV-LTL reading (all
//! demands zero) produces the spurious counterexample the paper criticises.

use quickstrom::prelude::*;
use quickstrom_apps::MenuApp;
use webdom::{App, AppCtx, El, EventKind, Payload};

fn options() -> CheckOptions {
    CheckOptions::default()
        .with_tests(10)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(3)
}

#[test]
fn healthy_menu_passes_with_demands() {
    let spec = specstrom::load(quickstrom::specs::MENU).unwrap();
    let report = check_spec(&spec, &options(), &|| {
        Box::new(WebExecutor::new(|| MenuApp::new(500)))
    })
    .unwrap();
    assert!(report.passed(), "{report}");
}

/// A menu that never comes back after the first open.
#[derive(Debug, Default)]
struct WedgedMenu {
    enabled: bool,
    opened: bool,
}

impl App for WedgedMenu {
    fn start(&mut self, _ctx: &mut AppCtx<'_>) {
        self.enabled = true;
    }
    fn view(&self) -> El {
        El::new("div").child(
            El::new("button")
                .id("menu")
                .text("menu")
                .disabled(!self.enabled)
                .on(EventKind::Click, "open"),
        )
    }
    fn on_event(&mut self, msg: &str, _p: &Payload, _ctx: &mut AppCtx<'_>) {
        if msg == "open" && self.enabled {
            self.enabled = false;
            self.opened = true;
            // No re-enable timer: disabled forever.
        }
    }
    fn on_timer(&mut self, _t: &str, _c: &mut AppCtx<'_>) {}
}

#[test]
fn wedged_menu_fails() {
    let spec = specstrom::load(quickstrom::specs::MENU).unwrap();
    let report = check_spec(&spec, &options(), &|| {
        Box::new(WebExecutor::new(WedgedMenu::default))
    })
    .unwrap();
    assert!(!report.passed(), "{report}");
    // A wedged menu can never be *definitively* refuted (liveness): the
    // verdict is presumptive (§2: "no finite amount of testing will ever
    // produce a complete counterexample").
    let cx = report.properties[0].counterexample().unwrap();
    assert_eq!(cx.verdict, Verdict::PresumablyFalse);
}

#[test]
fn rv_ltl_reading_flags_the_healthy_menu() {
    // The same property with all demands erased (RV-LTL, §5.5): a trace
    // that happens to end during the busy window is presumably false.
    let rv_spec = "\
        let ~menuEnabled = `#menu`.enabled;\n\
        action open! = click!(`#menu`) when menuEnabled;\n\
        action wait! = noop! timeout 600;\n\
        action woke? = changed?(`#menu`);\n\
        let ~p = always[0] eventually[0] menuEnabled;\n\
        check p;";
    let spec = specstrom::load(rv_spec).unwrap();
    // Seeds are scanned until one run ends right after an open! — with the
    // menu momentarily disabled, RV-LTL's presumptive answer is false.
    let mut spurious = false;
    for seed in 0..20 {
        let report = check_spec(
            &spec,
            &CheckOptions::default()
                .with_tests(2)
                .with_max_actions(3)
                .with_default_demand(0)
                .with_seed(seed)
                .with_shrink(false),
            &|| Box::new(WebExecutor::new(|| MenuApp::new(500))),
        )
        .unwrap();
        if !report.passed() {
            spurious = true;
            break;
        }
    }
    assert!(
        spurious,
        "expected RV-LTL to produce a spurious counterexample on some seed"
    );
}
