//! The worked formula examples of §2, checked through the public QuickLTL
//! API: the login invariant, the secret-page orderings, the flashing
//! screen, and the menu-liveness family — each with the verdicts the paper
//! discusses.

use quickstrom::quickltl::{check_trace, parse, Outcome, Verdict};

/// States are comma-separated proposition lists.
fn holds(p: &String, state: &&str) -> Result<bool, std::convert::Infallible> {
    Ok(state.split(',').any(|s| s == p))
}

fn check(formula: &str, trace: &[&str]) -> Outcome {
    check_trace(parse(formula).unwrap(), trace, &mut holds).unwrap()
}

#[test]
fn finances_invariant() {
    // "I should not reach the finances page without logging in":
    // □ (LoggedIn ∨ page ≠ "Finances").
    // Demand 2: exactly spent by the three-state trace (the subscript
    // counts *further* states beyond the first).
    let f = "G[2] (LoggedIn || notFinances)";
    assert_eq!(
        check(f, &["notFinances", "LoggedIn,notFinances", "LoggedIn"]),
        Outcome::Verdict(Verdict::PresumablyTrue)
    );
    // Reaching finances logged out refutes it definitively — safety
    // properties "are exactly those that can be refuted in a finite number
    // of steps".
    assert_eq!(
        check(f, &["notFinances", ""]),
        Outcome::Verdict(Verdict::DefinitelyFalse)
    );
}

#[test]
fn secret_page_orderings_are_equivalent() {
    // LogIn R ¬SecretPage  ≡  ¬(¬LogIn U SecretPage), §2's two renderings
    // of "we cannot access a secret page without logging in first".
    let release = "LogIn R[2] notSecret";
    let until = "!(!LogIn U[2] (!notSecret))";
    for trace in [
        vec!["notSecret", "notSecret,LogIn", "notSecret"],
        vec!["notSecret", ""],
        vec!["notSecret,LogIn", ""],
        vec!["notSecret", "notSecret"],
    ] {
        assert_eq!(
            check(release, &trace),
            check(until, &trace),
            "trace {trace:?}"
        );
    }
}

#[test]
fn menu_liveness_family() {
    // ◇ menuEnabled: liveness, definitively true once fulfilled …
    assert_eq!(
        check("F[2] m", &["", "", "m"]),
        Outcome::Verdict(Verdict::DefinitelyTrue)
    );
    // … and only presumably false when not: "no finite amount of testing
    // will ever produce a complete counterexample".
    assert_eq!(
        check("F[2] m", &["", "", ""]),
        Outcome::Verdict(Verdict::PresumablyFalse)
    );
    // □◇: the menu is never disabled forever. An alternating trace ending
    // enabled is presumably true with demands…
    assert_eq!(
        check("G[4] F[1] m", &["m", "", "m", "", "m", "m"]),
        Outcome::Verdict(Verdict::PresumablyTrue)
    );
    // …while the RV-LTL reading (zero demands) of the same behaviour
    // ending disabled gives the spurious answer of §2.1.
    assert_eq!(
        check("G[0] F[0] m", &["m", "", "m", ""]),
        Outcome::Verdict(Verdict::PresumablyFalse)
    );
    // QuickLTL instead demands more states at that point.
    assert_eq!(
        check("G[4] F[2] m", &["m", "", "m", ""]),
        Outcome::MoreStatesNeeded
    );
}

#[test]
fn flashing_screen() {
    // □ (dark ∧ ◯light ∨ light ∧ ◯dark), with the weak next so traces may
    // end mid-flash.
    let f = "G[1] (dark && Xw light || light && Xw dark)";
    assert_eq!(
        check(f, &["dark", "light", "dark", "light"]),
        Outcome::Verdict(Verdict::PresumablyTrue)
    );
    assert_eq!(
        check(f, &["dark", "dark"]),
        Outcome::Verdict(Verdict::DefinitelyFalse)
    );
}

#[test]
fn annotated_menu_example_of_section_2_2() {
    // □₁₀₀ ◇₅ menuEnabled — the paper's flagship annotation example: the
    // alternation counts as presumably true "so long as the menu is
    // re-enabled within 5 states of being disabled".
    let f = "G[100] F[5] m";
    let mut trace: Vec<&str> = Vec::new();
    for _ in 0..60 {
        trace.push("m");
        trace.push("");
    }
    trace.push("m");
    assert_eq!(check(f, &trace), Outcome::Verdict(Verdict::PresumablyTrue));
    // Wedged disabled: each disabled state spawns a fresh ◇₅ whose demand
    // is unexpired, so *no* finite trace ending disabled ever satisfies
    // the presumptive precondition — the logic keeps demanding states.
    // (The checker's forced-stop fallback is what turns this into a
    // presumably-false report in practice; see DESIGN.md.)
    let mut wedged: Vec<&str> = vec!["m"];
    wedged.extend(std::iter::repeat_n("", 110));
    assert_eq!(check(f, &wedged), Outcome::MoreStatesNeeded);
}
