//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stand-in.
//!
//! The companion `serde` crate implements its traits for every type via
//! blanket impls, so the derives have nothing to generate: they only need
//! to exist (and to register the `#[serde(...)]` helper attribute) so that
//! `#[derive(Serialize, Deserialize)]` compiles unchanged.

use proc_macro::TokenStream;

/// Accepts the input and emits nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and emits nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
