//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros — as
//! a simple wall-clock harness: each benchmark is warmed up once, then timed
//! over `sample_size` batches, and the mean per-iteration time is printed.
//! No statistics, plots, or baselines. Swap `vendor/criterion` for the
//! registry crate in the workspace `Cargo.toml` when online.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput metadata.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (reported alongside timings).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// How much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing loop handle.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass (also calibrates nothing; one iteration keeps it cheap).
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let per_iter = warmup.elapsed.max(Duration::from_nanos(1));
    // Aim each sample at ~10ms of work, within [1, 1000] iterations.
    let iterations =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1000) as u64;
    let mut total = Duration::ZERO;
    let mut count = 0u64;
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        count += bencher.iterations;
    }
    let mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
    println!("bench {id:<50} {:>12.1} ns/iter", mean_ns);
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
