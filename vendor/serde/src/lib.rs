//! Offline stand-in for `serde`.
//!
//! The real build environment for this repository has no network access and
//! no registry cache, so the workspace vendors a dependency-free shim. The
//! protocol crate only *derives* `Serialize`/`Deserialize` (nothing in-tree
//! serializes yet), so marker traits with blanket impls plus no-op derive
//! macros are behaviour-preserving. Swap `vendor/serde` for the registry
//! crate in the workspace `Cargo.toml` when online.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Implemented for every type, mirroring the blanket [`crate::Deserialize`].
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
