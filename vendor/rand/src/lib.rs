//! Offline stand-in for `rand`, covering the slice of the API the checker
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open integer ranges. The generator is PCG-XSH-RR 64/32 seeded via
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! exactly the reproducibility contract the checker's `--seed` relies on.

use std::ops::Range;

/// Sources of randomness: the low-level 32/64-bit word interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// A uniform sample from `range` using `rng`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide);
                let draw = rng.next_u64() as $wide % span;
                range.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic PCG-XSH-RR 64/32 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
        inc: u64,
    }

    const MULTIPLIER: u64 = 6364136223846793005;

    impl StdRng {
        fn step(&mut self) -> u64 {
            let old = self.state;
            self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
            old
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            let old = self.step();
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            let rot = (old >> 59) as u32;
            xorshifted.rotate_right(rot)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to decorrelate nearby seeds before seeding PCG.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let state = z ^ (z >> 31);
            let mut rng = StdRng {
                state: 0,
                inc: (state << 1) | 1,
            };
            rng.step();
            rng.state = rng.state.wrapping_add(state);
            rng.step();
            rng
        }
    }
}
