//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use — strategies (`any`, ranges, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! `prop::bool::weighted`, simple `[class]{m,n}` string patterns), the
//! combinators `prop_map` / `prop_filter_map` / `prop_recursive` / `boxed`,
//! and the `proptest!` test macro. Generation is deterministic (seeded from
//! the test name) and there is **no shrinking**: a failing case simply
//! panics with the values' `Debug` output. Swap `vendor/proptest` for the
//! registry crate in the workspace `Cargo.toml` when online.

use std::rc::Rc;

pub mod test_runner;

use test_runner::TestRng;

// ------------------------------------------------------------------ config

/// The subset of proptest's config the tests rely on.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases each property is run for.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------- strategy

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, unwrapping them.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Lifts `self` (the leaf strategy) into a recursive strategy: `f` maps
    /// a strategy for depth-`< n` values to one for depth-`n` values, and
    /// generation picks among all depths up to `depth` uniformly.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let inner = Union::new(levels.clone()).boxed();
            levels.push(f(inner).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 candidates: {}", self.whence)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among several strategies (the engine of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union choosing uniformly among `options`. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union of no strategies");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------- arbitrary

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ------------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------- string patterns

/// `&str` is a strategy: the pattern subset `[class]{m,n}` (sequences of
/// char classes or literal chars, each with an optional `{m}` / `{m,n}`
/// repetition) generates matching `String`s.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter(char::is_ascii));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1; // consume ']'
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("repetition bound"),
                    hi.trim().parse::<usize>().expect("repetition bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let j = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[j]);
        }
    }
    out
}

// ------------------------------------------------------------- prop modules

/// The `prop::*` strategy-constructor namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// A strategy for `Vec`s of `element` with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from fixed collections.
    pub mod sample {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// A strategy choosing uniformly from a fixed slice.
        pub fn select<T: Clone>(items: &'static [T]) -> Select<T> {
            assert!(!items.is_empty(), "select from empty slice");
            Select { items }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: 'static> {
            items: &'static [T],
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.items.len() as u64) as usize;
                self.items[i].clone()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// A strategy for `Option<T>`: `None` half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 1 == 0 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// A strategy for `bool` that is `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
            Weighted { p }
        }

        /// See [`weighted`].
        #[derive(Debug, Clone)]
        pub struct Weighted {
            p: f64,
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.f64() < self.p
            }
        }
    }
}

// ------------------------------------------------------------------ macros

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __qs_config: $crate::ProptestConfig = $config;
            let mut __qs_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            // A tuple of strategies is itself a strategy for the value tuple.
            let __qs_strategy = ($($strategy,)+);
            for _ in 0..__qs_config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&__qs_strategy, &mut __qs_rng);
                $body
            }
        }
    )*};
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
