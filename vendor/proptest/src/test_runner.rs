//! The deterministic RNG behind the stand-in strategies: PCG-XSH-RR 64/32,
//! seeded from the test's name so every test gets a stable, independent
//! stream across runs and platforms.

/// A small deterministic random number generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    inc: u64,
}

const MULTIPLIER: u64 = 6364136223846793005;

impl TestRng {
    /// A generator seeded from an arbitrary string (FNV-1a hashed).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(hash)
    }

    /// A generator from a numeric seed (SplitMix64-expanded into PCG state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let state = z ^ (z >> 31);
        let mut rng = TestRng {
            state: 0,
            inc: (state << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    fn step(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        old
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform draw from `0..bound`. Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A uniform draw from `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
