//! Bug hunting in TodoMVC implementations (§4): pick an implementation
//! from the Table 1 registry, run the formal specification against it, and
//! print the (shrunk) counterexample if one is found.
//!
//! ```text
//! cargo run --release --example todomvc_hunt                 # default: backbone_marionette
//! cargo run --release --example todomvc_hunt -- vanillajs    # any registry name
//! cargo run --release --example todomvc_hunt -- vue          # a passing one
//! ```
//!
//! The default target carries Table 2's problem 11 — the paper's
//! "particularly involved to uncover" bug: create an item, edit it to the
//! empty text, commit (it looks deleted), then click "toggle all" and the
//! item returns from the dead.

use quickstrom::prelude::*;
use quickstrom_apps::registry;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "backbone_marionette".to_owned());
    let Some(entry) = registry::by_name(&name) else {
        eprintln!("unknown implementation {name:?}; known names:");
        for e in registry::REGISTRY {
            eprintln!("  {}", e.name);
        }
        std::process::exit(2);
    };

    println!(
        "implementation: {} ({:?}, {})",
        entry.name,
        entry.maturity,
        if entry.expected_to_fail() {
            "listed as failing in Table 1"
        } else {
            "listed as passing in Table 1"
        }
    );
    for fault in entry.faults {
        println!(
            "  injected fault {}: {}",
            fault.number(),
            fault.description()
        );
    }

    let spec = specstrom::load(quickstrom::specs::TODOMVC).expect("bundled spec compiles");
    // Least-tried selection keeps rare interactions (edit commits,
    // toggle-all) in rotation instead of drowning them in input typing —
    // it finds this fault in a fraction of the runs uniform needs (the
    // `ablation-strategy` harness quantifies the gap; `Novelty` works
    // too, see DESIGN.md, *Exploration engine*).
    let options = CheckOptions::default()
        .with_tests(150)
        .with_max_actions(60)
        .with_default_demand(50)
        .with_strategy(SelectionStrategy::LeastTried)
        .with_seed(42);
    let started = std::time::Instant::now();
    let report = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(|| entry.build()))
    })
    .expect("checking proceeds without protocol errors");
    println!("{report}");
    println!("wall time: {:.2?}", started.elapsed());

    match (report.passed(), entry.expected_to_fail()) {
        (false, true) => println!("⇒ bug exposed, as the paper found."),
        (true, false) => println!("⇒ clean, as the paper found."),
        (false, false) => println!("⇒ UNEXPECTED failure of a passing implementation!"),
        (true, true) => println!(
            "⇒ fault escaped this session (flaky fault — try more tests or \
             another seed, cf. §4.3 on subscripts vs. flakiness)"
        ),
    }
}
