//! A remote executor served over TCP: the process-boundary proof of the
//! pipelined runtime's stage seam.
//!
//! ```text
//! cargo run --release --example remote_executor
//! ```
//!
//! The checker only ever talks to an executor through
//! [`Executor::send`] — one [`CheckerMsg`] in, a batch of
//! [`ExecutorMsg`]s out. This example moves that seam onto a socket using
//! the hand-rolled wire codec (`quickstrom_protocol::wire`): a server
//! thread accepts one TCP connection per session and drives a real
//! [`WebExecutor`] (here the counter application), while the checker side
//! holds a [`RemoteExecutor`] proxy that frames each request and reads
//! back the framed reply batch. Everything the in-process engine relies
//! on — full first snapshot, incremental deltas after it, version-checked
//! stale-action handling, event batching — crosses the wire unchanged,
//! and the report comes out identical to an in-process run of the same
//! seed, which the example asserts.

use quickstrom::prelude::*;
use quickstrom::quickstrom_apps::Counter;
use quickstrom::quickstrom_protocol::wire;
use quickstrom::quickstrom_protocol::{CheckerMsg, ExecutorMsg};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;

/// The checker-side proxy: an [`Executor`] whose `send` writes one framed
/// [`CheckerMsg`] and reads one framed reply batch. The request/reply
/// discipline is synchronous by construction, so the proxy needs no
/// buffering or reordering logic — ordering is the transport's.
struct RemoteExecutor {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RemoteExecutor {
    /// Opens one session: one TCP connection, one executor on the far
    /// side.
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteExecutor {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }
}

impl Executor for RemoteExecutor {
    fn send(&mut self, msg: CheckerMsg) -> Vec<ExecutorMsg> {
        wire::write_frame(&mut self.writer, &wire::encode_checker_msg(&msg))
            .expect("ship the checker message");
        let payload = wire::read_frame(&mut self.reader)
            .expect("read the reply frame")
            .expect("the server closed mid-session");
        wire::decode_executor_batch(&payload).expect("decode the reply batch")
    }
}

/// One server session: decode framed checker messages, feed them to a
/// fresh in-process [`WebExecutor`], ship each reply batch back framed.
/// `End` (or the peer closing the connection) finishes the session.
fn serve_session(stream: TcpStream) {
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut executor = WebExecutor::new(Counter::new);
    while let Some(payload) = wire::read_frame(&mut reader).expect("read a request frame") {
        let msg = wire::decode_checker_msg(&payload).expect("decode the checker message");
        let done = matches!(msg, CheckerMsg::End);
        let replies = executor.send(msg);
        wire::write_frame(&mut writer, &wire::encode_executor_batch(&replies))
            .expect("ship the reply batch");
        if done {
            break;
        }
    }
}

fn main() {
    // Bind an ephemeral port and serve sessions forever; the process
    // exits with main, so the listener thread needs no shutdown path.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind a local port");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        for conn in listener.incoming() {
            let stream = conn.expect("accept a session");
            thread::spawn(move || serve_session(stream));
        }
    });
    println!("serving counter sessions on {addr}");

    let options = CheckOptions::default()
        .with_tests(15)
        .with_max_actions(30)
        .with_default_demand(25)
        .with_seed(1719);

    // The remote run: every session is a TCP connection to the server.
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("the bundled spec compiles");
    let remote = check_spec(&spec, &options, &move || {
        Box::new(RemoteExecutor::connect(addr).expect("connect a session"))
    })
    .expect("no protocol errors");
    println!("over the wire: {remote}");

    // The oracle: the same seed against the same app, in-process (a fresh
    // spec so shared caches can't blur the comparison).
    let spec = specstrom::load(quickstrom::specs::COUNTER).expect("the bundled spec compiles");
    let local = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(Counter::new))
    })
    .expect("no protocol errors");
    println!("in process:    {local}");

    assert_eq!(
        remote, local,
        "the wire must be invisible: same verdicts, runs, states, actions"
    );
    assert!(remote.passed(), "the counter spec holds");
    println!("reports are identical across the process boundary ✓");
}
