//! The egg timer worked example of §3.2 (Figure 8), checked end to end
//! with the full 180-second timer and the paper's subscripts (400/360).
//!
//! ```text
//! cargo run --release --example egg_timer
//! ```
//!
//! Three properties are checked:
//!
//! * `safety` — every step is one of the `starting`/`stopping`/`waiting`/
//!   `ticking` transitions;
//! * `liveness` — after a start, the timer eventually stops;
//! * `timeUp` — with the `stop!` action excluded (the `check … with`
//!   restriction), time eventually runs out.
//!
//! Thanks to the virtual clock, the "three minutes" of egg timing pass in
//! milliseconds of wall time.

use quickstrom::prelude::*;
use quickstrom_apps::EggTimer;

fn main() {
    let source = quickstrom::specs::EGG_TIMER;
    let spec = specstrom::load(source).expect("the bundled spec compiles");
    println!(
        "checking the Figure 8 egg timer: properties from {} check command(s)",
        spec.checks.len()
    );

    // The 400-demand on `always` means each run observes 400+ states; the
    // budget below gives room for the full 180-tick countdown of `timeUp`.
    let options = CheckOptions::default()
        .with_tests(3)
        .with_max_actions(450)
        .with_default_demand(100)
        .with_seed(8)
        .with_shrink(false);
    let started = std::time::Instant::now();
    let report = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(EggTimer::new))
    })
    .expect("checking proceeds without protocol errors");
    print!("{report}");
    println!(
        "wall time: {:.2?} (virtual minutes of egg timing included)",
        started.elapsed()
    );
    if !report.passed() {
        println!("failures: {:?}", report.failures());
        std::process::exit(1);
    }
}
