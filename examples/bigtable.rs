//! BigTable: check a data grid of hundreds of rows and report what the
//! incremental snapshot pipeline saved.
//!
//! ```text
//! cargo run --release --example bigtable
//! ```
//!
//! The grid (quickstrom_apps::BigTable) renders 250 rows; the
//! specification (specs/bigtable.strom) states the sort/filter/select
//! safety property. Each checker step changes at most a couple of
//! elements, so after the initial full snapshot every protocol message is
//! a small `SnapshotDelta` — the transport summary printed at the end
//! shows the bytes shipped versus the full-snapshot counterfactual.

use quickstrom::prelude::*;
use quickstrom_apps::BigTable;

fn main() {
    let source = quickstrom::specs::BIGTABLE;
    let spec = specstrom::load(source).expect("the bundled spec compiles");
    println!("── static analysis ───────────────────────────────────────");
    println!(
        "dependencies: {}",
        spec.dependencies
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let options = CheckOptions::default()
        .with_tests(10)
        .with_max_actions(25)
        .with_default_demand(20)
        .with_seed(2026);
    println!("── checking (250-row grid) ───────────────────────────────");
    let report = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(|| BigTable::with_rows(250)))
    })
    .expect("checking proceeds without protocol errors");
    print!("{report}");

    let transport = report.transport();
    println!("── snapshot transport ────────────────────────────────────");
    println!(
        "states: {} ({} full, {} deltas), changed selectors: {}",
        transport.states,
        transport.full_states,
        transport.delta_states,
        transport.changed_selectors
    );
    println!(
        "shipped {} bytes vs {} full-snapshot bytes — delta ratio {:.3}",
        transport.shipped_bytes,
        transport.full_bytes,
        transport.delta_ratio()
    );
    if report.passed() {
        println!("all properties passed ✓");
    } else {
        println!("failures: {:?}", report.failures());
        std::process::exit(1);
    }
}
