//! The checker is executor-agnostic (§3.4): test a CCS process model with
//! the very same checker and specification language used for web apps.
//!
//! ```text
//! cargo run --example ccs_model
//! ```
//!
//! The model is Milner's vending machine; the specification says that
//! coins and drinks strictly alternate and that the machine always returns
//! to accepting coins.

use ccs::{parse_definitions, transitions, CcsExecutor, Process};
use quickstrom::prelude::*;

const MODEL: &str = "Vend = coin.(tea.Vend + coffee.Vend);";

const SPEC: &str = r#"
    let ~coinReady = `.act-coin`.present;
    let ~teaReady = `.act-tea`.present;
    let ~coffeeReady = `.act-coffee`.present;

    action coin!   = click!(`.act-coin`)   when coinReady;
    action tea!    = click!(`.act-tea`)    when teaReady;
    action coffee! = click!(`.act-coffee`) when coffeeReady;

    let ~buyCoin = coinReady
      && nextW (coin! in happened && teaReady && coffeeReady && !coinReady);
    let ~buyTea = teaReady
      && nextW (tea! in happened && coinReady && !teaReady);
    let ~buyCoffee = coffeeReady
      && nextW (coffee! in happened && coinReady && !coffeeReady);

    let ~safety = loaded? in happened && coinReady
      && always[25] (buyCoin || buyTea || buyCoffee);

    let ~serviceLoop = always[25] eventually[3] coinReady;

    check safety serviceLoop;
"#;

fn main() {
    let (defs, main_name) = parse_definitions(MODEL).expect("model parses");
    let start = Process::Const(main_name);
    println!("model: {MODEL}");
    println!(
        "initial transitions: {}",
        transitions(&start, &defs)
            .expect("well-defined model")
            .iter()
            .map(|(a, p)| format!("--{a}--> {p}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let spec = specstrom::load(SPEC).expect("spec compiles");
    let options = CheckOptions::default()
        .with_tests(25)
        .with_max_actions(40)
        .with_default_demand(25)
        .with_seed(99);
    let report = check_spec(&spec, &options, &|| {
        let (defs, main_name) = parse_definitions(MODEL).expect("model parses");
        Box::new(CcsExecutor::new(defs, Process::Const(main_name)))
    })
    .expect("checking proceeds");
    print!("{report}");
    if report.passed() {
        println!("the vending machine satisfies its specification ✓");
    } else {
        println!("failures: {:?}", report.failures());
        std::process::exit(1);
    }
}
