//! Quickstart: check a counter application against a Specstrom
//! specification.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The specification (specs/counter.strom) is a two-transition state
//! machine: `inc!` adds exactly one, `reset!` returns to zero, and the
//! count is never negative. The checker explores the app with randomly
//! generated interactions and reports the verdicts.

use quickstrom::prelude::*;
use quickstrom_apps::Counter;

fn main() {
    let source = quickstrom::specs::COUNTER;
    println!("── specification ─────────────────────────────────────────");
    println!("{source}");

    let spec = specstrom::load(source).expect("the bundled spec compiles");
    println!("── static analysis ───────────────────────────────────────");
    println!(
        "dependencies: {}",
        spec.dependencies
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "actions: {}",
        spec.actions.keys().cloned().collect::<Vec<_>>().join(", ")
    );

    let options = CheckOptions::default()
        .with_tests(20)
        .with_max_actions(40)
        .with_default_demand(30)
        .with_seed(2024);
    println!("── checking ──────────────────────────────────────────────");
    let report = check_spec(&spec, &options, &|| {
        Box::new(WebExecutor::new(Counter::new))
    })
    .expect("checking proceeds without protocol errors");
    print!("{report}");
    if report.passed() {
        println!("all properties passed ✓");
    } else {
        println!("failures: {:?}", report.failures());
        std::process::exit(1);
    }
}
